// Explicit-protocol baselines: RCP and XCP vs TFC (extends Fig. 10 /
// the paper's Sec. 7 argument).
//
// RCP (Dukkipati et al.) is the canonical explicit *rate* protocol: routers
// advertise one fair rate per link computed by a control loop. The paper
// argues such protocols converge too slowly for data centers and buffer the
// overshoot when flows join; TFC allocates the exact split every slot.
// This bench quantifies both claims side by side.

#include <memory>
#include <vector>

#include "bench/common.h"
#include "src/rcp/rcp.h"
#include "src/xcp/xcp.h"
#include "src/tfc/endpoints.h"
#include "src/tfc/switch_port.h"
#include "src/topo/topologies.h"
#include "src/workload/persistent_flow.h"

namespace {

using namespace tfc;

enum class Baseline { kTfc, kRcp, kXcp };

const char* BaselineName(Baseline b) {
  switch (b) {
    case Baseline::kTfc:
      return "TFC";
    case Baseline::kRcp:
      return "RCP";
    case Baseline::kXcp:
      return "XCP";
  }
  return "?";
}

std::unique_ptr<ReliableSender> Make(Baseline b, Network* net, Host* src, Host* dst) {
  switch (b) {
    case Baseline::kTfc:
      return std::make_unique<TfcSender>(net, src, dst, TfcHostConfig());
    case Baseline::kRcp:
      return std::make_unique<RcpSender>(net, src, dst, RcpHostConfig());
    case Baseline::kXcp:
      return std::make_unique<XcpSender>(net, src, dst, XcpHostConfig());
  }
  return nullptr;
}

void JoinExperiment(Baseline baseline, int joiners, bool quick) {
  Network net(171);
  StarTopology topo = BuildStar(net, joiners + 2, LinkOptions(), kGbps, Microseconds(20));
  switch (baseline) {
    case Baseline::kTfc:
      InstallTfcSwitches(net);
      break;
    case Baseline::kRcp:
      InstallRcpSwitches(net);
      break;
    case Baseline::kXcp:
      InstallXcpSwitches(net);
      break;
  }
  std::vector<std::unique_ptr<PersistentFlow>> flows;
  flows.push_back(
      std::make_unique<PersistentFlow>(Make(baseline, &net, topo.hosts[1], topo.hosts[0])));
  flows.back()->Start();
  const TimeNs warmup = quick ? Milliseconds(100) : Milliseconds(400);
  net.scheduler().RunUntil(warmup);

  Port* bottleneck = Network::FindPort(topo.sw, topo.hosts[0]);
  bottleneck->ResetMaxQueue();
  for (int j = 0; j < joiners; ++j) {
    flows.push_back(std::make_unique<PersistentFlow>(
        Make(baseline, &net, topo.hosts[static_cast<size_t>(2 + j)], topo.hosts[0])));
    flows.back()->Start();
  }
  const TimeNs t0 = net.scheduler().now();

  // Time until the joiners' aggregate 1 ms goodput stays within 20% of
  // their fair share for 5 consecutive windows.
  const double fair = 949e6 * joiners / (joiners + 1);
  uint64_t last = 0;
  for (auto& f : flows) {
    (void)f;
  }
  auto joiner_bytes = [&] {
    uint64_t sum = 0;
    for (size_t i = 1; i < flows.size(); ++i) {
      sum += flows[i]->delivered_bytes();
    }
    return sum;
  };
  last = joiner_bytes();
  int in_band = 0;
  double settle_ms = -1;
  for (int w = 1; w <= 600; ++w) {
    net.scheduler().RunUntil(t0 + w * Milliseconds(1));
    const uint64_t d = joiner_bytes();
    const double bps = static_cast<double>(d - last) * 8.0 / 0.001;
    last = d;
    if (bps > 0.8 * fair && bps < 1.2 * fair) {
      if (++in_band == 5) {
        settle_ms = ToSeconds(net.scheduler().now() - t0) * 1000.0 - 4.0;
        break;
      }
    } else {
      in_band = 0;
    }
  }

  std::printf("%-6s %8d %14.1f %18.1f %12llu\n", BaselineName(baseline), joiners,
              settle_ms, static_cast<double>(bottleneck->max_queue_bytes()) / 1024.0,
              static_cast<unsigned long long>(bottleneck->drops()));
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = bench::QuickMode(argc, argv);
  bench::Header("Baselines: RCP and XCP vs TFC on flow joins (extends Fig. 10)",
                "explicit control loops settle over many intervals; RCP buffers the "
                "join overshoot, XCP ramps joiners slowly; TFC re-splits in one slot");
  std::printf("%-6s %8s %14s %18s %12s\n", "proto", "joiners", "settle(ms)",
              "join max_queue(KB)", "drops");
  for (int joiners : {1, 4, 8}) {
    JoinExperiment(Baseline::kTfc, joiners, quick);
    JoinExperiment(Baseline::kRcp, joiners, quick);
    JoinExperiment(Baseline::kXcp, joiners, quick);
  }
  std::printf("\n(settle = joiners' aggregate goodput within 20%% of fair share for\n"
              " 5 consecutive 1 ms windows; max_queue measured from the join.)\n");
  return 0;
}
