// Shared helpers for the per-figure reproduction benches.
//
// Every bench binary is standalone: run it with no arguments and it prints
// the rows of the paper table/figure it reproduces, plus a short header
// explaining what to compare against. Pass --quick to any bench to shrink
// durations/sweeps for smoke-testing.

#ifndef BENCH_COMMON_H_
#define BENCH_COMMON_H_

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/sim/stats.h"
#include "src/workload/protocol.h"

namespace tfc {
namespace bench {

inline bool QuickMode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      return true;
    }
  }
  return false;
}

inline void Header(const char* figure, const char* claim) {
  std::printf("==============================================================================\n");
  std::printf("%s\n", figure);
  std::printf("paper: %s\n", claim);
  std::printf("==============================================================================\n");
}

inline ProtocolSuite MakeSuite(Protocol p) {
  ProtocolSuite suite;
  suite.protocol = p;
  return suite;
}

inline const std::vector<Protocol>& AllProtocols() {
  static const std::vector<Protocol> kAll = {Protocol::kTfc, Protocol::kDctcp,
                                             Protocol::kTcp};
  return kAll;
}

// Prints a mean + tail-percentile row for a sample population (the paper's
// Fig. 13a/16a format).
inline void PrintTailRow(const char* label, SampleSet& samples, double scale = 1.0,
                         const char* unit = "us") {
  if (samples.empty()) {
    std::printf("%-8s (no samples)\n", label);
    return;
  }
  std::printf("%-8s n=%-6zu mean=%9.1f%s  95th=%9.1f%s  99th=%9.1f%s  99.9th=%9.1f%s  "
              "99.99th=%9.1f%s\n",
              label, samples.count(), samples.Mean() / scale, unit,
              samples.Percentile(95) / scale, unit, samples.Percentile(99) / scale, unit,
              samples.Percentile(99.9) / scale, unit, samples.Percentile(99.99) / scale,
              unit);
}

}  // namespace bench
}  // namespace tfc

#endif  // BENCH_COMMON_H_
