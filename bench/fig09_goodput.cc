// Fig. 9 — High goodput and fairness, 4 staggered long flows.
//
// Same scenario as Fig. 8; per-flow goodput sampled in 20 ms windows.
//
// Paper result: all three protocols fill the bottleneck, but TFC shares it
// fairly even at small timescales while TCP's per-flow goodput oscillates
// wildly; DCTCP sits in between.

#include <memory>
#include <vector>

#include "bench/common.h"
#include "src/sim/stats.h"
#include "src/topo/topologies.h"
#include "src/workload/persistent_flow.h"

namespace {

void RunOnce(tfc::Protocol protocol, bool quick) {
  using namespace tfc;
  ProtocolSuite suite = bench::MakeSuite(protocol);
  Network net(91);
  LinkOptions opts;
  opts.ecn_threshold_bytes = suite.EcnThresholdBytes(kGbps);
  TestbedTopology topo = BuildTestbed(net, opts);
  suite.InstallSwitchLogic(net);

  const TimeNs stagger = quick ? Milliseconds(100) : Seconds(3.0);
  std::vector<std::unique_ptr<PersistentFlow>> flows;
  Host* sources[] = {topo.hosts[0], topo.hosts[1], topo.hosts[0], topo.hosts[1]};
  for (int i = 0; i < 4; ++i) {
    flows.push_back(std::make_unique<PersistentFlow>(
        suite.MakeSender(&net, sources[i], topo.hosts[2])));
    PersistentFlow* flow = flows.back().get();
    net.scheduler().ScheduleAt(stagger * i + 1, [flow] { flow->Start(); });
  }

  // Sample per-flow goodput in 20 ms windows during the 4-flow phase and
  // compute Jain fairness per window.
  const TimeNs window = quick ? Microseconds(500) : Milliseconds(20);
  net.scheduler().RunUntil(stagger * 3 + stagger / 4);  // all 4 running
  std::vector<uint64_t> last(4);
  for (int i = 0; i < 4; ++i) {
    last[static_cast<size_t>(i)] = flows[static_cast<size_t>(i)]->delivered_bytes();
  }
  RunningStats fairness;
  RunningStats total_goodput;
  std::vector<RunningStats> per_flow(4);
  const int windows = quick ? 40 : 120;
  for (int w = 0; w < windows; ++w) {
    net.scheduler().RunUntil(net.scheduler().now() + window);
    std::vector<double> rates;
    double total = 0;
    for (int i = 0; i < 4; ++i) {
      const uint64_t d = flows[static_cast<size_t>(i)]->delivered_bytes();
      const double bps =
          static_cast<double>(d - last[static_cast<size_t>(i)]) * 8.0 / ToSeconds(window);
      rates.push_back(bps);
      per_flow[static_cast<size_t>(i)].Add(bps);
      total += bps;
      last[static_cast<size_t>(i)] = d;
    }
    fairness.Add(JainFairness(rates));
    total_goodput.Add(total);
  }

  std::printf("%-8s total=%7.1f Mbps  per-flow mean (Mbps): %6.1f %6.1f %6.1f %6.1f  "
              "Jain/window: mean=%.4f min=%.4f\n",
              ProtocolName(protocol), total_goodput.mean() / 1e6,
              per_flow[0].mean() / 1e6, per_flow[1].mean() / 1e6,
              per_flow[2].mean() / 1e6, per_flow[3].mean() / 1e6, fairness.mean(),
              fairness.min());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tfc;
  const bool quick = bench::QuickMode(argc, argv);
  bench::Header(
      "Fig. 9 - goodput & fairness, 4 staggered long flows (20 ms windows)",
      "all protocols fill the link; TFC is fair per-20ms-window, TCP unstable");
  for (Protocol p : bench::AllProtocols()) {
    RunOnce(p, quick);
  }
  std::printf("\n(Jain index of 1.0 means equal 20 ms-window shares; TCP's\n"
              " minimum shows its small-timescale unfairness.)\n");
  return 0;
}
