// Fig. 9 — High goodput and fairness, 4 staggered long flows.
//
// Same scenario as Fig. 8; per-flow goodput sampled in 20 ms windows —
// since PR 3 via the telemetry recorder: each flow's cumulative
// "flow.<id>.delivered_bytes" gauge is recorded on the window cadence and
// the per-window rates are differenced from the series afterwards, which
// is numerically identical to the old manual RunUntil-stepping loop.
//
// Paper result: all three protocols fill the bottleneck, but TFC shares it
// fairly even at small timescales while TCP's per-flow goodput oscillates
// wildly; DCTCP sits in between.

#include <memory>
#include <string>
#include <vector>

#include "bench/common.h"
#include "src/sim/stats.h"
#include "src/sim/telemetry.h"
#include "src/topo/topologies.h"
#include "src/workload/persistent_flow.h"

namespace {

void RunOnce(tfc::Protocol protocol, bool quick) {
  using namespace tfc;
  ProtocolSuite suite = bench::MakeSuite(protocol);
  Network net(91);
  LinkOptions opts;
  opts.ecn_threshold_bytes = suite.EcnThresholdBytes(kGbps);
  TestbedTopology topo = BuildTestbed(net, opts);
  suite.InstallSwitchLogic(net);

  const TimeNs stagger = quick ? Milliseconds(100) : Seconds(3.0);
  std::vector<std::unique_ptr<PersistentFlow>> flows;
  Host* sources[] = {topo.hosts[0], topo.hosts[1], topo.hosts[0], topo.hosts[1]};
  for (int i = 0; i < 4; ++i) {
    flows.push_back(std::make_unique<PersistentFlow>(
        suite.MakeSender(&net, sources[i], topo.hosts[2])));
    PersistentFlow* flow = flows.back().get();
    net.scheduler().ScheduleAt(stagger * i + 1, [flow] { flow->Start(); });
  }

  // Record per-flow cumulative delivered bytes on the window cadence during
  // the 4-flow phase; rates and Jain fairness fall out of the differences.
  const TimeNs window = quick ? Microseconds(500) : Milliseconds(20);
  const int windows = quick ? 40 : 120;
  net.scheduler().RunUntil(stagger * 3 + stagger / 4);  // all 4 running

  TimeSeriesRecorder recorder(&net.scheduler(), &net.metrics());
  std::vector<std::string> series_names;
  for (const auto& flow : flows) {
    series_names.push_back("flow." + std::to_string(flow->sender().flow_id()) +
                           ".delivered_bytes");
    recorder.Watch(series_names.back());
  }
  // First tick at now: the baseline sample the manual loop took before
  // stepping. windows more ticks => windows diffs per flow.
  recorder.Start(window, /*first_delay=*/0);
  net.scheduler().RunUntil(net.scheduler().now() + window * windows);
  recorder.Stop();

  std::vector<std::vector<TimeSeriesRecorder::Sample>> series;
  for (const std::string& name : series_names) {
    series.push_back(recorder.Series(name));
  }

  RunningStats fairness;
  RunningStats total_goodput;
  std::vector<RunningStats> per_flow(4);
  for (int w = 0; w < windows; ++w) {
    std::vector<double> rates;
    double total = 0;
    for (size_t i = 0; i < series.size(); ++i) {
      const size_t k = static_cast<size_t>(w);
      if (k + 1 >= series[i].size()) {
        continue;  // flow metric vanished mid-run (cannot happen here)
      }
      const double bps =
          (series[i][k + 1].v - series[i][k].v) * 8.0 / ToSeconds(window);
      rates.push_back(bps);
      per_flow[i].Add(bps);
      total += bps;
    }
    fairness.Add(JainFairness(rates));
    total_goodput.Add(total);
  }

  std::printf("%-8s total=%7.1f Mbps  per-flow mean (Mbps): %6.1f %6.1f %6.1f %6.1f  "
              "Jain/window: mean=%.4f min=%.4f\n",
              ProtocolName(protocol), total_goodput.mean() / 1e6,
              per_flow[0].mean() / 1e6, per_flow[1].mean() / 1e6,
              per_flow[2].mean() / 1e6, per_flow[3].mean() / 1e6, fairness.mean(),
              fairness.min());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tfc;
  const bool quick = bench::QuickMode(argc, argv);
  bench::Header(
      "Fig. 9 - goodput & fairness, 4 staggered long flows (20 ms windows)",
      "all protocols fill the link; TFC is fair per-20ms-window, TCP unstable");
  for (Protocol p : bench::AllProtocols()) {
    RunOnce(p, quick);
  }
  std::printf("\n(Jain index of 1.0 means equal 20 ms-window shares; TCP's\n"
              " minimum shows its small-timescale unfairness.)\n");
  return 0;
}
