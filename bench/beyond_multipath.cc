// Beyond the paper: TFC on a multipath (fat-tree) fabric.
//
// The paper evaluates tree topologies with a single path per host pair and
// notes data centers use multi-rooted trees. This bench runs pod-shifted
// permutation traffic on a k=4 fat tree with per-flow ECMP and compares
// TFC, DCTCP, and TCP on aggregate goodput, loss, and queueing — checking
// that TFC's per-port token allocation composes with multipath routing
// (every port runs its own slot machinery; flows see the min window along
// their hashed path).

#include <memory>
#include <vector>

#include "bench/common.h"
#include "src/topo/topologies.h"
#include "src/workload/persistent_flow.h"

namespace {

using namespace tfc;

void RunOnce(Protocol protocol, bool quick) {
  ProtocolSuite suite = bench::MakeSuite(protocol);
  Network net(181);
  LinkOptions opts;
  opts.ecn_threshold_bytes = suite.EcnThresholdBytes(kGbps);
  FatTreeTopology topo = BuildFatTree(net, 4, opts);
  suite.InstallSwitchLogic(net);

  // Pod-shifted permutation: host i of pod p -> host i of pod p+1.
  std::vector<std::unique_ptr<PersistentFlow>> flows;
  for (int pod = 0; pod < 4; ++pod) {
    for (int i = 0; i < 4; ++i) {
      flows.push_back(std::make_unique<PersistentFlow>(suite.MakeSender(
          &net, topo.host(pod, i), topo.host((pod + 1) % 4, i))));
      flows.back()->Start();
    }
  }

  const TimeNs warmup = quick ? Milliseconds(50) : Milliseconds(300);
  const TimeNs measure = quick ? Milliseconds(100) : Milliseconds(700);
  net.scheduler().RunUntil(warmup);
  std::vector<uint64_t> base;
  for (auto& f : flows) {
    base.push_back(f->delivered_bytes());
  }
  Bytes max_queue = 0;
  for (const auto& node : net.nodes()) {
    if (!node->is_host()) {
      for (const auto& port : node->ports()) {
        port->ResetMaxQueue();
      }
    }
  }
  net.scheduler().RunUntil(warmup + measure);

  double total = 0;
  std::vector<double> rates;
  for (size_t i = 0; i < flows.size(); ++i) {
    rates.push_back(static_cast<double>(flows[i]->delivered_bytes() - base[i]) * 8.0 /
                    ToSeconds(measure));
    total += rates.back();
  }
  uint64_t drops = 0;
  for (const auto& node : net.nodes()) {
    if (node->is_host()) {
      continue;
    }
    for (const auto& port : node->ports()) {
      drops += port->drops();
      max_queue = std::max(max_queue, port->max_queue_bytes());
    }
  }
  std::printf("%-8s %16.2f %10.3f %14.1f %10llu\n", suite.name(), total / 1e9,
              JainFairness(rates), static_cast<double>(max_queue) / 1024.0,
              static_cast<unsigned long long>(drops));
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = bench::QuickMode(argc, argv);
  bench::Header("Beyond the paper: permutation traffic on a k=4 fat tree (ECMP)",
                "TFC's per-port allocation should compose with multipath: high "
                "goodput, zero loss, small queues");
  std::printf("%-8s %16s %10s %14s %10s\n", "proto", "aggregate(Gbps)", "fairness",
              "max_queue(KB)", "drops");
  for (Protocol p : bench::AllProtocols()) {
    RunOnce(p, quick);
  }
  std::printf("\n(16 flows, all inter-pod; per-flow ECMP cannot perfectly pack 16\n"
              " flows onto 4 cores, so the aggregate sits below the full 16 Gbps\n"
              " bisection for every protocol — compare loss and queueing.)\n");
  return 0;
}
