// Fig. 7 — Accuracy of measuring the number of effective flows (Ne) with
// inactive flows.
//
// Setup (paper Sec. 6.1.2): H4 keeps n2 = 5 steady flows to H6; H1 ramps
// n1 from 1 to 10 active flows and then deactivates them one per second.
// The switch NF2 counts Ne at the port toward H6. Because H1's flows cross
// more hops, each contributes rtt_delim/rtt_H1 < 1 effective flows (Eq. 1).
//
// Paper result: measured Ne tracks n1/1.5 + n2 closely with small variance,
// and inactive flows are excluded as soon as they stop sending.

#include <memory>
#include <vector>

#include "bench/common.h"
#include "src/tfc/switch_port.h"
#include "src/topo/topologies.h"
#include "src/workload/persistent_flow.h"

int main(int argc, char** argv) {
  using namespace tfc;
  const bool quick = bench::QuickMode(argc, argv);
  bench::Header("Fig. 7 - accuracy of Ne with inactive flows",
                "measured Ne tracks n1/(rtt ratio) + n2; inactive flows excluded");

  Network net(71);
  TestbedTopology topo = BuildTestbed(net);
  InstallTfcSwitches(net);
  Host* h1 = topo.hosts[0];
  Host* h4 = topo.hosts[3];
  Host* h6 = topo.hosts[5];

  // n2 = 5 steady flows from H4 (same rack as H6: the short-RTT delimiter
  // candidates — started first so one of them is adopted).
  std::vector<std::unique_ptr<PersistentFlow>> steady;
  for (int i = 0; i < 5; ++i) {
    steady.push_back(std::make_unique<PersistentFlow>(
        std::make_unique<TfcSender>(&net, h4, h6, TfcHostConfig())));
    steady.back()->Start();
  }
  net.scheduler().RunUntil(Milliseconds(50));

  // n1 = up to 10 on/off flows from H1 (cross-rack, longer RTT).
  std::vector<std::unique_ptr<PersistentFlow>> onoff;
  std::vector<TfcSender*> h1_senders;
  for (int i = 0; i < 10; ++i) {
    auto sender = std::make_unique<TfcSender>(&net, h1, h6, TfcHostConfig());
    h1_senders.push_back(sender.get());
    onoff.push_back(std::make_unique<PersistentFlow>(std::move(sender)));
    onoff.back()->SetActive(false);
    onoff.back()->Start();
  }
  TfcSender* h4_probe = static_cast<TfcSender*>(&steady[0]->sender());

  TfcPortAgent* agent =
      TfcPortAgent::FromPort(Network::FindPort(topo.switches[2], h6));
  RunningStats slot_e;
  agent->on_slot = [&](const TfcPortAgent::SlotInfo& info) {
    slot_e.Add(info.effective_flows);
  };

  const TimeNs phase = quick ? Milliseconds(40) : Milliseconds(500);
  std::printf("%8s %10s %12s %12s %10s\n", "time(s)", "active_n1", "measured_Ne",
              "expected_Ne", "stddev");
  TimeNs now = Milliseconds(50);
  // Ramp up 0..10 then back down to 0, one step per phase.
  std::vector<int> schedule;
  for (int i = 0; i <= 10; ++i) {
    schedule.push_back(i);
  }
  for (int i = 9; i >= 0; --i) {
    schedule.push_back(i);
  }
  for (int active : schedule) {
    for (int i = 0; i < 10; ++i) {
      onoff[static_cast<size_t>(i)]->SetActive(i < active);
    }
    // Let the change settle for a quarter phase, then measure.
    net.scheduler().RunUntil(now + phase / 4);
    slot_e = RunningStats();
    now += phase;
    net.scheduler().RunUntil(now);
    // Expected Ne (Eq. 1): n2 + n1 * rtt_delim / rtt_h1, using the flows'
    // own smoothed RTT estimates for the ratio.
    const double rtt_ratio =
        (active > 0 && h1_senders[0]->srtt() > 0)
            ? static_cast<double>(h4_probe->srtt()) /
                  static_cast<double>(h1_senders[0]->srtt())
            : 1.0;
    const double expected = 5.0 + active * rtt_ratio;
    std::printf("%8.2f %10d %12.2f %12.2f %10.2f\n", ToSeconds(now), active,
                slot_e.mean(), expected, slot_e.stddev());
  }
  std::printf("\n(measured Ne follows the active flow population and collapses back\n"
              " to n2=5 as H1's flows go silent — inactive flows are excluded.)\n");
  return 0;
}
