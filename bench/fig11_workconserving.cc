// Fig. 11 — Work conservation across two bottlenecks.
//
// Setup (paper Fig. 5): host 1 sends n1 = 8 flows to host 4 and n2 = 2
// flows to host 3; host 2 sends n3 = 2 flows to host 3. S1's uplink and
// S2's downlink are both bottlenecks; S1 allocates the n2 flows less than
// S2 would, so without token adjustment S2's downlink would idle.
//
// Paper result: both bottlenecks sustain >900 Mbps goodput and the queue
// varies around ~2 KB (about one packet) — TFC is work-conserving.

#include <memory>
#include <vector>

#include "bench/common.h"
#include "src/topo/topologies.h"
#include "src/workload/persistent_flow.h"
#include "src/workload/samplers.h"

int main(int argc, char** argv) {
  using namespace tfc;
  const bool quick = bench::QuickMode(argc, argv);
  bench::Header("Fig. 11 - work conservation with two bottlenecks (Fig. 5 topology)",
                "both bottlenecks >900 Mbps; queues ~2 KB");

  Network net(111);
  MultiBottleneckTopology topo = BuildMultiBottleneck(net);
  InstallTfcSwitches(net);

  std::vector<std::unique_ptr<PersistentFlow>> flows;
  auto add = [&](Host* src, Host* dst) {
    flows.push_back(std::make_unique<PersistentFlow>(
        std::make_unique<TfcSender>(&net, src, dst, TfcHostConfig())));
    flows.back()->Start();
  };
  for (int i = 0; i < 8; ++i) {
    add(topo.h1, topo.h4);
  }
  for (int i = 0; i < 2; ++i) {
    add(topo.h1, topo.h3);
  }
  for (int i = 0; i < 2; ++i) {
    add(topo.h2, topo.h3);
  }

  Port* s1_up = Network::FindPort(topo.s1, topo.s2);
  Port* s2_down = Network::FindPort(topo.s2, topo.h3);
  QueueSampler q1(&net.scheduler(), s1_up, Milliseconds(1));
  QueueSampler q2(&net.scheduler(), s2_down, Milliseconds(1));

  const TimeNs sample = quick ? Milliseconds(100) : Seconds(1.0);
  const int steps = quick ? 5 : 20;
  std::printf("%8s %14s %14s %12s %12s\n", "time(s)", "S1-up(Mbps)", "S2-down(Mbps)",
              "q_S1(KB)", "q_S2(KB)");
  Bytes last_up = 0;
  Bytes last_down = 0;
  for (int i = 1; i <= steps; ++i) {
    net.scheduler().RunUntil(sample * i);
    const Bytes up = s1_up->tx_bytes();
    const Bytes down = s2_down->tx_bytes();
    std::printf("%8.1f %14.1f %14.1f %12.2f %12.2f\n", ToSeconds(sample * i),
                static_cast<double>(up - last_up) * 8.0 / ToSeconds(sample) / 1e6,
                static_cast<double>(down - last_down) * 8.0 / ToSeconds(sample) / 1e6,
                static_cast<double>(s1_up->queue_bytes()) / 1024.0,
                static_cast<double>(s2_down->queue_bytes()) / 1024.0);
    last_up = up;
    last_down = down;
  }

  // Per-flow split: n3 flows (h2->h3) take the slack the upstream-limited
  // n2 flows (h1->h3) leave at S2.
  std::printf("\nper-flow goodput over the run:\n");
  const char* labels[] = {"n1 (h1->h4)", "n2 (h1->h3)", "n3 (h2->h3)"};
  const int start[] = {0, 8, 10};
  const int count[] = {8, 2, 2};
  for (int g = 0; g < 3; ++g) {
    double sum = 0;
    for (int i = 0; i < count[g]; ++i) {
      sum += static_cast<double>(flows[static_cast<size_t>(start[g] + i)]->delivered_bytes());
    }
    std::printf("  %-12s %6.1f Mbps per flow\n", labels[g],
                sum / count[g] * 8.0 / ToSeconds(sample * steps) / 1e6);
  }
  std::printf("\nqueue stats: S1-up mean=%.2f KB max=%.2f KB | S2-down mean=%.2f KB "
              "max=%.2f KB | drops=%llu\n",
              q1.stats.mean() / 1024.0, q1.stats.max() / 1024.0,
              q2.stats.mean() / 1024.0, q2.stats.max() / 1024.0,
              static_cast<unsigned long long>(s1_up->drops() + s2_down->drops()));
  return 0;
}
