// Fig. 16 — Large-scale benchmark traffic (the paper's ns-2 experiment).
//
// Setup (paper Sec. 6.2.2): 18 racks x 20 servers, 1 Gbps downlinks, one
// 10 Gbps uplink per rack, 20 us per-link latency (160 us 4-hop RTT).
// Web-search benchmark traffic; each query makes every other server send a
// 2 KB response to one aggregator (the 359-to-1 fan-in the paper describes).
//
// Paper result: mean query FCT — DCTCP ~30x slower than TFC, TCP ~8x slower
// than DCTCP; TFC's tails stay small while DCTCP/TCP hit repeated timeouts.
// Background flows >1 KB finish slightly slower under TFC.

#include "bench/common.h"
#include "src/topo/topologies.h"
#include "src/workload/benchmark_traffic.h"

namespace {

void RunOnce(tfc::Protocol protocol, bool quick) {
  using namespace tfc;
  ProtocolSuite suite = bench::MakeSuite(protocol);
  Network net(161);
  LinkOptions opts;
  opts.switch_buffer_bytes = 512 * 1024;
  opts.ecn_threshold_bytes = suite.EcnThresholdBytes(kGbps);
  const int racks = quick ? 6 : 18;
  const int hosts_per_rack = quick ? 5 : 20;
  LeafSpineTopology topo = BuildLeafSpine(net, racks, hosts_per_rack, opts);
  suite.InstallSwitchLogic(net);

  BenchmarkTrafficConfig cfg;
  // Full-fan-in queries (all other servers respond to one aggregator).
  cfg.query_interarrival = quick ? Milliseconds(20) : Milliseconds(25);
  cfg.query_fanin = 0;
  cfg.background_interarrival = quick ? Milliseconds(2) : Microseconds(400);
  cfg.stop_time = quick ? Milliseconds(200) : Milliseconds(800);
  BenchmarkTrafficApp app(&net, suite, topo.all_hosts, cfg);
  app.Start();
  net.scheduler().RunUntil(cfg.stop_time + Seconds(40.0));  // drain stragglers

  std::printf("\n--- %s: %llu flows (%llu completed), %llu timeouts ---\n",
              suite.name(), static_cast<unsigned long long>(app.flows_started()),
              static_cast<unsigned long long>(app.flows_completed()),
              static_cast<unsigned long long>(app.total_timeouts()));
  // The paper reports these in milliseconds at this scale.
  bench::PrintTailRow("query", app.fct().query(), 1000.0, "ms");
  std::printf("background flows, mean FCT by size bin:\n");
  for (int bin = 0; bin < kNumSizeBins; ++bin) {
    SampleSet& s = app.fct().background(bin);
    if (s.empty()) {
      std::printf("  %-10s (no samples)\n", kSizeBinLabels[static_cast<size_t>(bin)]);
    } else {
      std::printf("  %-10s n=%-5zu mean=%10.2fms  99.9th=%12.2fms\n",
                  kSizeBinLabels[static_cast<size_t>(bin)], s.count(),
                  s.Mean() / 1000.0, s.Percentile(99.9) / 1000.0);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tfc;
  const bool quick = bench::QuickMode(argc, argv);
  bench::Header("Fig. 16 - FCT under benchmark traffic, 18 racks x 20 servers",
                "query FCT: TFC ~30x faster than DCTCP, DCTCP ~8x faster than TCP; "
                "tails: TFC small, others timeout-bound");
  for (Protocol p : bench::AllProtocols()) {
    RunOnce(p, quick);
  }
  std::printf("\n(359-way 2 KB fan-in per query; background from the web-search size\n"
              " distribution. Absolute numbers differ from the paper's testbed, the\n"
              " protocol ordering and tail structure are the reproduced result.)\n");
  return 0;
}
