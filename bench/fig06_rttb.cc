// Fig. 6 — Accuracy of measuring rtt_b.
//
// Setup (paper Sec. 6.1.2): H1 and H2 each send two long-lived TFC flows to
// H3; the switch port toward H3 measures rtt_b (min delimiter round over 1 s
// windows). A reference flow reports its raw per-round RTT samples. End
// hosts add a random processing delay, so the reference RTT is jittery while
// rtt_b captures the floor.
//
// Paper result: measured rtt_b ~59 us vs referenced RTT ~65 us — rtt_b sits
// a roughly constant few microseconds below the reference because it
// excludes the random host processing delay. We print both CDFs.

#include <algorithm>
#include <memory>
#include <vector>

#include "bench/common.h"
#include "src/tfc/switch_port.h"
#include "src/topo/topologies.h"
#include "src/workload/persistent_flow.h"
#include "src/workload/samplers.h"

int main(int argc, char** argv) {
  using namespace tfc;
  const bool quick = bench::QuickMode(argc, argv);
  bench::Header("Fig. 6 - accuracy of measuring rtt_b",
                "measured rtt_b ~59us, referenced RTT ~65us; constant gap = host jitter");

  Network net(61);
  TestbedTopology topo = BuildTestbed(net);
  for (Host* h : topo.hosts) {
    h->set_processing_delay(Microseconds(3), Microseconds(10));
  }
  InstallTfcSwitches(net);

  // H1, H2 -> H3: two long flows each.
  std::vector<std::unique_ptr<PersistentFlow>> flows;
  for (Host* src : {topo.hosts[0], topo.hosts[1]}) {
    for (int i = 0; i < 2; ++i) {
      flows.push_back(std::make_unique<PersistentFlow>(
          std::make_unique<TfcSender>(&net, src, topo.hosts[2], TfcHostConfig())));
      flows.back()->Start();
    }
  }
  // Reference: one more flow whose raw RTT samples we record each round.
  auto ref_sender = std::make_unique<TfcSender>(&net, topo.hosts[0], topo.hosts[2],
                                                TfcHostConfig());
  TfcSender* ref = ref_sender.get();
  PersistentFlow ref_flow(std::move(ref_sender));
  ref_flow.Start();

  TfcPortAgent* agent =
      TfcPortAgent::FromPort(Network::FindPort(topo.switches[1], topo.hosts[2]));

  SampleSet rttb_samples;
  SampleSet ref_samples;
  // Sample rtt_b once per interval (paper: per second); raw reference RTT
  // more often to build its CDF.
  const TimeNs total = quick ? Milliseconds(400) : Seconds(4.0);
  const TimeNs rttb_interval = quick ? Milliseconds(20) : Milliseconds(100);
  PeriodicTimer rttb_tick(&net.scheduler(), [&] {
    rttb_samples.Add(ToMicroseconds(agent->rtt_b()));
  });
  PeriodicTimer ref_tick(&net.scheduler(), [&] {
    if (ref->last_rtt_sample() > 0) {
      ref_samples.Add(ToMicroseconds(ref->last_rtt_sample()));
    }
  });
  net.scheduler().RunUntil(Milliseconds(100));  // warm up
  rttb_tick.Start(rttb_interval);
  ref_tick.Start(Milliseconds(1));
  net.scheduler().RunUntil(total);

  std::printf("%-6s %18s %18s\n", "CDF", "measured rtt_b(us)", "referenced RTT(us)");
  for (double p : {5.0, 25.0, 50.0, 75.0, 95.0, 100.0}) {
    std::printf("%5.2f %18.1f %18.1f\n", p / 100.0, rttb_samples.Percentile(p),
                ref_samples.Percentile(p));
  }
  std::printf("\nmean measured rtt_b = %.1f us, mean referenced RTT = %.1f us, "
              "gap = %.1f us\n",
              rttb_samples.Mean(), ref_samples.Mean(),
              ref_samples.Mean() - rttb_samples.Mean());
  std::printf("(rtt_b excludes the random host processing delay; the gap is the\n"
              " roughly constant offset the paper describes, so token adjustment\n"
              " can compensate for it.)\n");
  return 0;
}
