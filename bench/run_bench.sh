#!/usr/bin/env bash
# Benchmark trajectory harness: builds micro_core with optimization and
# writes BENCH_core.json at the repo root — {bench_name: {items_per_sec,
# ns_per_op}} — the numbers successive PRs are measured against.
#
# Also times an 8-run tfcsim sweep serially vs. --jobs $(nproc) and merges
# the wall-clocks (and speedup) into BENCH_core.json as Sweep* entries, so
# the parallel-sweep scaling is part of the recorded trajectory.
#
# Usage: bench/run_bench.sh [--quick] [benchmark_filter_regex]
#   --quick   single repetition (default: 3 repetitions, randomly
#             interleaved, minimum reported — see docs/perf.md on why
#             mean-of-sequential-families is the wrong estimator here)
set -euo pipefail

cd "$(dirname "$0")/.."

REPS=3
FILTER='.'
for arg in "$@"; do
  case "$arg" in
    --quick) REPS=1 ;;
    *) FILTER="$arg" ;;
  esac
done

if command -v cmake >/dev/null && cmake --list-presets >/dev/null 2>&1; then
  cmake --preset release >/dev/null
else
  cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
fi
cmake --build build -j --target micro_core >/dev/null

RAW=$(mktemp /tmp/micro_core_bench.XXXXXX.json)
trap 'rm -f "$RAW"' EXIT

ARGS=(--benchmark_format=json "--benchmark_out=$RAW" "--benchmark_filter=$FILTER")
if [ "$REPS" -gt 1 ]; then
  # Random interleaving runs the repetitions of all families shuffled
  # together instead of family-after-family, so slow machine drift (this
  # container shows ±15% over a multi-minute run) hits every benchmark
  # equally rather than penalizing whichever family ran last. to_json.py
  # then keeps the minimum repetition — the right estimator when noise is
  # one-sided — which is what the ratio gates below compare.
  ARGS+=("--benchmark_repetitions=$REPS" --benchmark_enable_random_interleaving=true)
fi
./build/bench/micro_core "${ARGS[@]}"

if ! [ -s "$RAW" ]; then
  echo "error: no benchmarks matched filter '$FILTER'" >&2
  exit 1
fi
if [ "$FILTER" != '.' ]; then
  echo "note: filter active — BENCH_core.json will contain only matching benchmarks" >&2
fi

python3 bench/to_json.py "$RAW" BENCH_core.json
echo
echo "wrote $(pwd)/BENCH_core.json:"
python3 - <<'EOF'
import json
data = json.load(open("BENCH_core.json"))
for name, e in sorted(data.items()):
    ips = e.get("items_per_sec")
    ips_s = f"{ips:12.3e} items/s" if ips is not None else " " * 20
    print(f"  {name:45s} {ips_s}  {e['ns_per_op']:12.1f} ns/op")

# Telemetry recording overhead: events/sec of the incast macro-bench with a
# 100us record-everything recorder attached vs. telemetry merely compiled in.
def ips(prefix):
    for name, e in data.items():
        if name.startswith(prefix) and e.get("items_per_sec"):
            return e["items_per_sec"]
    return None

off = ips("BM_IncastTestbedEventsPerSec")
on = ips("BM_IncastTestbedTelemetryOn")
if off and on:
    ratio = off / on
    print(f"\n  telemetry recorder overhead: {ratio:.2f}x slower with a"
          f" 100us full-registry recorder ({off:.3e} -> {on:.3e} events/s)")
    # Gate: the compiled-sample-plan recorder holds recording overhead to
    # <=1.5x of the telemetry-off baseline (it was ~10x with per-tick
    # string-map lookups; measured ~1.3x after the compiled-plan rework —
    # docs/perf.md). A breach means someone put strings back on the tick
    # path.
    if ratio > 1.5:
        import sys
        print("error: telemetry-on recording is >1.5x slower than the "
              "telemetry-off baseline", file=sys.stderr)
        sys.exit(1)

# Guard: an armed flight-recorder ring must stay within 1.15x of the plain
# path. The armed append is a branch, a 40-byte struct fill, and a masked
# store per event — anything past 1.15x means allocation, lookups, or I/O
# crept onto the Record/EmitTrace path (the lint.py recorder-hot rule bans
# the constructs; this gate catches what the regexes miss). Trace-off needs
# no separate twin: disarmed, the gate is the same single branch the plain
# bench (BM_IncastTestbedEventsPerSec) already measures against
# BENCH_core.json.
trace = ips("BM_IncastTestbedTraceOn")
if off and trace:
    ratio = off / trace
    print(f"  armed flight-ring overhead: {ratio:.2f}x"
          f" ({off:.3e} -> {trace:.3e} events/s)")
    if ratio > 1.15:
        import sys
        print("error: armed flight recorder is >15% slower than the plain "
              "path", file=sys.stderr)
        sys.exit(1)

# Guard: an attached-but-idle fault injector must stay close to the plain
# data path (docs/robustness.md). Measured cost is ~1.1x (one hash lookup +
# profile checks per wire packet); the 1.25x gate leaves room for run-to-run
# jitter while still catching a real hook regression. The *unattached* cost
# (one null check per packet) is guarded by BM_IncastTestbedEventsPerSec
# against the committed BENCH_core.json.
fault = ips("BM_IncastTestbedFaultIdle")
if off and fault:
    ratio = off / fault
    print(f"  idle fault-injector overhead: {ratio:.2f}x"
          f" ({off:.3e} -> {fault:.3e} events/s)")
    if ratio > 1.25:
        import sys
        print("error: idle fault layer is >25% slower than the plain path",
              file=sys.stderr)
        sys.exit(1)
EOF

# Sweep scaling: wall-clock of an 8-repetition incast sweep on the Fig. 4
# testbed, serial (--jobs=1) vs. all hardware threads. The parallel run is
# bit-identical to the serial one (enforced by tests/sweep_test.cc); this
# records how much wall-clock the parallelism buys on this host. On a
# single-core host the speedup is ~1.0x by construction — the ISSUE's >=3x
# target is only observable with >=8 hardware threads.
echo
echo "sweep scaling (8-run incast sweep, serial vs --jobs $(nproc)):"
cmake --build build -j --target tfcsim >/dev/null
python3 - "$(nproc)" <<'EOF'
import json, subprocess, sys, time

jobs = int(sys.argv[1])
base = ["./build/examples/tfcsim", "--workload=incast", "--protocol=all",
        "--topology=testbed", "--senders=8", "--block_kb=256", "--rounds=20",
        "--seed=1", "--sweep=8"]

def run(j):
    t0 = time.monotonic()
    subprocess.run(base + [f"--jobs={j}"], check=True,
                   stdout=subprocess.DEVNULL)
    return time.monotonic() - t0

serial = run(1)
par = run(jobs)
data = json.load(open("BENCH_core.json"))
data["SweepIncast8Serial"] = {"wall_seconds": round(serial, 3)}
data[f"SweepIncast8Jobs{jobs}"] = {
    "wall_seconds": round(par, 3),
    "jobs": jobs,
    "speedup_vs_serial": round(serial / par, 2),
}
json.dump(data, open("BENCH_core.json", "w"), indent=2, sort_keys=True)
open("BENCH_core.json", "a").write("\n")
print(f"  serial: {serial:.2f}s   --jobs={jobs}: {par:.2f}s   "
      f"speedup: {serial / par:.2f}x")
EOF
