// Fig. 12 — Incast on the 1 Gbps testbed: goodput and queue vs #senders.
//
// Setup (paper Sec. 6.1.2): a receiver requests 256 KB blocks from N
// synchronized senders over persistent connections, barrier between rounds.
// 256 KB per-port buffers.
//
// Paper result: TFC sustains 800-900 Mbps and near-zero queue up to 100
// senders; DCTCP collapses beyond ~50 senders (queue near the buffer
// limit); TCP collapses beyond ~10.

#include <vector>

#include "bench/common.h"
#include "src/topo/topologies.h"
#include "src/workload/incast.h"

namespace {

struct Row {
  double goodput_mbps;
  double avg_queue_kb;
  double max_queue_kb;
  uint64_t timeouts;
  uint64_t drops;
};

Row RunOnce(tfc::Protocol protocol, int senders, bool quick) {
  using namespace tfc;
  ProtocolSuite suite = bench::MakeSuite(protocol);
  Network net(121);
  LinkOptions opts;
  opts.switch_buffer_bytes = 256 * 1024;
  opts.ecn_threshold_bytes = suite.EcnThresholdBytes(kGbps);
  StarTopology topo = BuildStar(net, senders + 1, opts);
  suite.InstallSwitchLogic(net);

  std::vector<Host*> responders(topo.hosts.begin() + 1, topo.hosts.end());
  IncastConfig cfg;
  cfg.block_bytes = 256 * 1024;
  cfg.rounds = quick ? 3 : 10;
  IncastApp app(&net, suite, topo.hosts[0], responders, cfg);

  Port* bottleneck = Network::FindPort(topo.sw, topo.hosts[0]);
  RunningStats queue;
  PeriodicTimer sampler(&net.scheduler(), [&] {
    queue.Add(static_cast<double>(bottleneck->queue_bytes()));
  });
  sampler.Start(Microseconds(100));
  app.Start();
  net.scheduler().RunUntil(Seconds(120));

  return Row{app.goodput_bps() / 1e6, queue.mean() / 1024.0,
             static_cast<double>(bottleneck->max_queue_bytes()) / 1024.0,
             app.total_timeouts(), bottleneck->drops()};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tfc;
  const bool quick = bench::QuickMode(argc, argv);
  bench::Header("Fig. 12 - testbed incast: goodput & queue vs number of senders",
                "TFC 800-900 Mbps flat to 100 senders, ~no queue; DCTCP collapses "
                ">50; TCP >10");

  std::vector<int> counts = quick ? std::vector<int>{5, 20, 50}
                                  : std::vector<int>{5, 10, 20, 30, 40, 50, 60, 80, 100};
  std::printf("%-8s %8s %14s %14s %14s %10s %10s\n", "proto", "senders",
              "goodput(Mbps)", "avg_queue(KB)", "max_queue(KB)", "timeouts", "drops");
  for (Protocol p : bench::AllProtocols()) {
    for (int n : counts) {
      Row r = RunOnce(p, n, quick);
      std::printf("%-8s %8d %14.1f %14.1f %14.1f %10llu %10llu\n", ProtocolName(p), n,
                  r.goodput_mbps, r.avg_queue_kb, r.max_queue_kb,
                  static_cast<unsigned long long>(r.timeouts),
                  static_cast<unsigned long long>(r.drops));
    }
  }
  std::printf("\n(each row: 256 KB blocks, barrier-synchronized rounds; goodput is\n"
              " application-level. Compare the collapse points across protocols.)\n");
  return 0;
}
