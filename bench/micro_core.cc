// Component microbenchmarks (google-benchmark): the engineering costs
// behind the simulator and the TFC switch data path. These back the
// implementation-cost discussion (paper Sec. 5: the NetFPGA TFC switch adds
// ~30-58% logic; here we show the simulated data path stays cheap enough
// for large-scale runs).

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "src/net/network.h"
#include "src/sim/random.h"
#include "src/sim/scheduler.h"
#include "src/tfc/endpoints.h"
#include "src/tfc/switch_port.h"
#include "src/topo/topologies.h"
#include "src/workload/benchmark_traffic.h"
#include "src/workload/persistent_flow.h"

namespace tfc {
namespace {

void BM_SchedulerScheduleAndRun(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Scheduler sched;
    int sink = 0;
    for (int i = 0; i < batch; ++i) {
      sched.ScheduleAt(i, [&sink] { ++sink; });
    }
    sched.Run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_SchedulerScheduleAndRun)->Arg(1000)->Arg(100000);

void BM_SchedulerCancel(benchmark::State& state) {
  for (auto _ : state) {
    Scheduler sched;
    std::vector<Scheduler::EventId> ids;
    ids.reserve(1000);
    for (int i = 0; i < 1000; ++i) {
      ids.push_back(sched.ScheduleAt(i, [] {}));
    }
    for (auto id : ids) {
      sched.Cancel(id);
    }
    sched.Run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SchedulerCancel);

void BM_TfcOnEgressDataPath(benchmark::State& state) {
  Network net(1);
  Host* a = net.AddHost("a");
  Host* b = net.AddHost("b");
  Switch* sw = net.AddSwitch("sw");
  net.Link(a, sw, kGbps, 0);
  net.Link(sw, b, kGbps, 0);
  net.BuildRoutes();
  Port* egress = Network::FindPort(sw, b);
  egress->set_agent(std::make_unique<TfcPortAgent>(sw, egress, TfcSwitchConfig()));
  TfcPortAgent* agent = TfcPortAgent::FromPort(egress);

  Packet pkt;
  pkt.flow_id = 1;
  pkt.src = a->id();
  pkt.dst = b->id();
  pkt.type = PacketType::kData;
  pkt.payload = kMssBytes;
  int i = 0;
  for (auto _ : state) {
    pkt.rm = (++i % 8) == 0;  // a round mark every 8 packets
    pkt.window = kWindowInfinite;
    agent->OnEgress(pkt);
    benchmark::DoNotOptimize(pkt.window);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TfcOnEgressDataPath);

void BM_EmpiricalCdfSample(benchmark::State& state) {
  EmpiricalCdf cdf = WebSearchFlowSizes();
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cdf.Sample(rng));
  }
}
BENCHMARK(BM_EmpiricalCdfSample);

// Whole-simulator throughput: simulated packet-hops per wall second for a
// saturated 8-flow star under each protocol.
void BM_EndToEndSimulation(benchmark::State& state) {
  const auto protocol = static_cast<Protocol>(state.range(0));
  for (auto _ : state) {
    ProtocolSuite suite;
    suite.protocol = protocol;
    Network net(9);
    LinkOptions opts;
    opts.ecn_threshold_bytes = suite.EcnThresholdBytes(kGbps);
    StarTopology topo = BuildStar(net, 9, opts);
    suite.InstallSwitchLogic(net);
    std::vector<std::unique_ptr<PersistentFlow>> flows;
    for (int i = 1; i <= 8; ++i) {
      flows.push_back(std::make_unique<PersistentFlow>(
          suite.MakeSender(&net, topo.hosts[static_cast<size_t>(i)], topo.hosts[0])));
      flows.back()->Start();
    }
    net.scheduler().RunUntil(Milliseconds(20));
    state.counters["events"] = static_cast<double>(net.scheduler().executed());
  }
}
BENCHMARK(BM_EndToEndSimulation)
    ->Arg(static_cast<int>(Protocol::kTcp))
    ->Arg(static_cast<int>(Protocol::kDctcp))
    ->Arg(static_cast<int>(Protocol::kTfc))
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tfc

BENCHMARK_MAIN();
