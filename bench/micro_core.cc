// Component microbenchmarks (google-benchmark): the engineering costs
// behind the simulator and the TFC switch data path. These back the
// implementation-cost discussion (paper Sec. 5: the NetFPGA TFC switch adds
// ~30-58% logic; here we show the simulated data path stays cheap enough
// for large-scale runs).

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "src/net/fault.h"
#include "src/net/network.h"
#include "src/net/packet_pool.h"
#include "src/sim/random.h"
#include "src/sim/scheduler.h"
#include "src/sim/telemetry.h"
#include "src/tfc/endpoints.h"
#include "src/tfc/switch_port.h"
#include "src/topo/topologies.h"
#include "src/workload/benchmark_traffic.h"
#include "src/workload/incast.h"
#include "src/workload/persistent_flow.h"

namespace tfc {
namespace {

void BM_SchedulerScheduleAndRun(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Scheduler sched;
    int sink = 0;
    for (int i = 0; i < batch; ++i) {
      sched.ScheduleAt(i, [&sink] { ++sink; });
    }
    sched.Run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_SchedulerScheduleAndRun)->Arg(1000)->Arg(100000);

void BM_SchedulerCancel(benchmark::State& state) {
  for (auto _ : state) {
    Scheduler sched;
    std::vector<Scheduler::EventId> ids;
    ids.reserve(1000);
    for (int i = 0; i < 1000; ++i) {
      ids.push_back(sched.ScheduleAt(i, [] {}));
    }
    for (auto id : ids) {
      sched.Cancel(id);
    }
    sched.Run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SchedulerCancel);

// Cancel of an event that has already fired (the common case after the
// indexed-heap rewrite made it a guaranteed no-op rather than a tombstone).
void BM_SchedulerCancelFired(benchmark::State& state) {
  Scheduler sched;
  std::vector<Scheduler::EventId> ids;
  ids.reserve(1024);
  for (auto _ : state) {
    state.PauseTiming();
    ids.clear();
    for (int i = 0; i < 1024; ++i) {
      ids.push_back(sched.ScheduleAfter(i, [] {}));
    }
    sched.Run();
    state.ResumeTiming();
    for (auto id : ids) {
      benchmark::DoNotOptimize(sched.Cancel(id));
    }
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_SchedulerCancelFired);

// Telemetry hot-path primitives: the marginal cost an instrumented
// component pays per update (registration/name lookup is cold-path only).
void BM_TelemetryCounterAdd(benchmark::State& state) {
  MetricRegistry registry;
  Counter* counter = registry.AddCounter("bench.counter");
  for (auto _ : state) {
    counter->Add();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TelemetryCounterAdd);

void BM_TelemetryHistogramRecord(benchmark::State& state) {
  MetricRegistry registry;
  Histogram* hist = registry.AddHistogram("bench.hist");
  uint64_t v = 12345;
  for (auto _ : state) {
    hist->Record(v);
    v = v * 6364136223846793005ull + 1442695040888963407ull;  // LCG spread
    v >>= 34;                                                 // keep values sane
    benchmark::DoNotOptimize(hist);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TelemetryHistogramRecord);

void BM_PacketPoolAllocRelease(benchmark::State& state) {
  PacketPool pool;
  for (auto _ : state) {
    PacketPtr a = pool.Allocate();
    PacketPtr b = pool.Allocate();
    benchmark::DoNotOptimize(a.get());
    benchmark::DoNotOptimize(b.get());
  }
  state.SetItemsProcessed(state.iterations() * 2);
  state.counters["pool_high_water"] = static_cast<double>(pool.high_water());
}
BENCHMARK(BM_PacketPoolAllocRelease);

void BM_TfcOnEgressDataPath(benchmark::State& state) {
  Network net(1);
  Host* a = net.AddHost("a");
  Host* b = net.AddHost("b");
  Switch* sw = net.AddSwitch("sw");
  net.Link(a, sw, kGbps, 0);
  net.Link(sw, b, kGbps, 0);
  net.BuildRoutes();
  Port* egress = Network::FindPort(sw, b);
  egress->set_agent(std::make_unique<TfcPortAgent>(sw, egress, TfcSwitchConfig()));
  TfcPortAgent* agent = TfcPortAgent::FromPort(egress);

  Packet pkt;
  pkt.flow_id = 1;
  pkt.src = a->id();
  pkt.dst = b->id();
  pkt.type = PacketType::kData;
  pkt.payload = kMssBytes;
  int i = 0;
  for (auto _ : state) {
    pkt.rm = (++i % 8) == 0;  // a round mark every 8 packets
    pkt.window = kWindowInfinite;
    agent->OnEgress(pkt);
    benchmark::DoNotOptimize(pkt.window);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TfcOnEgressDataPath);

void BM_EmpiricalCdfSample(benchmark::State& state) {
  EmpiricalCdf cdf = WebSearchFlowSizes();
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cdf.Sample(rng));
  }
}
BENCHMARK(BM_EmpiricalCdfSample);

// Whole-simulator throughput: simulated packet-hops per wall second for a
// saturated 8-flow star under each protocol.
void BM_EndToEndSimulation(benchmark::State& state) {
  const auto protocol = static_cast<Protocol>(state.range(0));
  for (auto _ : state) {
    ProtocolSuite suite;
    suite.protocol = protocol;
    Network net(9);
    LinkOptions opts;
    opts.ecn_threshold_bytes = suite.EcnThresholdBytes(kGbps);
    StarTopology topo = BuildStar(net, 9, opts);
    suite.InstallSwitchLogic(net);
    std::vector<std::unique_ptr<PersistentFlow>> flows;
    for (int i = 1; i <= 8; ++i) {
      flows.push_back(std::make_unique<PersistentFlow>(
          suite.MakeSender(&net, topo.hosts[static_cast<size_t>(i)], topo.hosts[0])));
      flows.back()->Start();
    }
    net.scheduler().RunUntil(Milliseconds(20));
    state.counters["events"] = static_cast<double>(net.scheduler().executed());
  }
}
BENCHMARK(BM_EndToEndSimulation)
    ->Arg(static_cast<int>(Protocol::kTcp))
    ->Arg(static_cast<int>(Protocol::kDctcp))
    ->Arg(static_cast<int>(Protocol::kTfc))
    ->Unit(benchmark::kMillisecond);

// End-to-end macro-bench: simulated scheduler events per wall second for a
// TFC incast on the paper's testbed topology (Fig. 4 shape, Fig. 12
// workload). items_per_second here IS the simulator's events/sec figure
// recorded in BENCH_core.json; later PRs are measured against it.
void BM_IncastTestbedEventsPerSec(benchmark::State& state) {
  uint64_t events = 0;
  double pool_hits = 0;
  double pool_misses = 0;
  double pool_high_water = 0;
  for (auto _ : state) {
    ProtocolSuite suite;
    suite.protocol = Protocol::kTfc;
    Network net(3);
    LinkOptions opts;
    opts.ecn_threshold_bytes = suite.EcnThresholdBytes(kGbps);
    TestbedTopology topo = BuildTestbed(net, opts);
    suite.InstallSwitchLogic(net);
    std::vector<Host*> senders(topo.hosts.begin() + 1, topo.hosts.end());
    IncastConfig cfg;
    cfg.block_bytes = 64 * 1024;
    cfg.rounds = 20;
    IncastApp app(&net, suite, topo.hosts[0], senders, cfg);
    app.Start();
    net.scheduler().RunUntil(Seconds(2));
    events += net.scheduler().executed();
    pool_hits += static_cast<double>(net.packet_pool().hits());
    pool_misses += static_cast<double>(net.packet_pool().misses());
    pool_high_water = std::max(
        pool_high_water, static_cast<double>(net.packet_pool().high_water()));
  }
  state.SetItemsProcessed(static_cast<int64_t>(events));
  const double iters = static_cast<double>(state.iterations());
  state.counters["pool_hits"] = pool_hits / iters;
  state.counters["pool_misses"] = pool_misses / iters;
  state.counters["pool_high_water"] = pool_high_water;
  state.SetLabel("tfc incast 8->1, 64KB x20 rounds, testbed topo");
}
BENCHMARK(BM_IncastTestbedEventsPerSec)->Unit(benchmark::kMillisecond);

// Telemetry-on twin of BM_IncastTestbedEventsPerSec: the same workload with
// a TimeSeriesRecorder sampling *every* registered metric every 100 us of
// sim time. The items_per_second gap between the two benches is the
// all-in recording overhead; bench.sh records both so the delta is tracked
// run over run. (BM_IncastTestbedEventsPerSec itself is the
// telemetry-compiled-in-but-disabled number guarded against BENCH_core.json.)
void BM_IncastTestbedTelemetryOn(benchmark::State& state) {
  uint64_t events = 0;
  uint64_t samples = 0;
  double series = 0;
  for (auto _ : state) {
    ProtocolSuite suite;
    suite.protocol = Protocol::kTfc;
    Network net(3);
    LinkOptions opts;
    opts.ecn_threshold_bytes = suite.EcnThresholdBytes(kGbps);
    TestbedTopology topo = BuildTestbed(net, opts);
    suite.InstallSwitchLogic(net);
    std::vector<Host*> senders(topo.hosts.begin() + 1, topo.hosts.end());
    IncastConfig cfg;
    cfg.block_bytes = 64 * 1024;
    cfg.rounds = 20;
    IncastApp app(&net, suite, topo.hosts[0], senders, cfg);
    TimeSeriesRecorder recorder(&net.scheduler(), &net.metrics());
    recorder.WatchAll();
    recorder.Start(Microseconds(100));
    // Stop at workload completion so the recorder samples exactly the
    // region the telemetry-off bench simulates with traffic in flight.
    app.on_finished = [&recorder] { recorder.Stop(); };
    app.Start();
    net.scheduler().RunUntil(Seconds(2));
    events += net.scheduler().executed();
    state.counters["plan_rebuilds"] =
        static_cast<double>(recorder.plan_rebuilds());
    series = static_cast<double>(recorder.SeriesNames().size());
    uint64_t run_samples = 0;
    recorder.ForEachSeries(
        [&run_samples](const std::string&,
                       const std::vector<TimeSeriesRecorder::Sample>& s) {
          run_samples += s.size();
        });
    samples += run_samples;
  }
  state.SetItemsProcessed(static_cast<int64_t>(events));
  const double iters = static_cast<double>(state.iterations());
  state.counters["series"] = series;
  state.counters["samples"] = static_cast<double>(samples) / iters;
  state.SetLabel("same incast with a 100us recorder on every metric");
}
BENCHMARK(BM_IncastTestbedTelemetryOn)->Unit(benchmark::kMillisecond);

// Flight-recorder twin of BM_IncastTestbedEventsPerSec: the same workload
// with a 64K-event ring armed, so every packet event and TFC control-plane
// event pays the armed path — gate branch, MakePacketEvent fill, masked
// ring store. The items_per_second gap against the plain bench is the
// always-armable tracing overhead; run_bench.sh gates it at <= 1.15x.
// (With the ring disarmed the cost is the same one-branch gate the plain
// bench already pays, so trace-off needs no separate twin.)
void BM_IncastTestbedTraceOn(benchmark::State& state) {
  uint64_t events = 0;
  uint64_t recorded = 0;
  for (auto _ : state) {
    ProtocolSuite suite;
    suite.protocol = Protocol::kTfc;
    Network net(3);
    LinkOptions opts;
    opts.ecn_threshold_bytes = suite.EcnThresholdBytes(kGbps);
    TestbedTopology topo = BuildTestbed(net, opts);
    suite.InstallSwitchLogic(net);
    net.flight().Arm(1 << 16);
    std::vector<Host*> senders(topo.hosts.begin() + 1, topo.hosts.end());
    IncastConfig cfg;
    cfg.block_bytes = 64 * 1024;
    cfg.rounds = 20;
    IncastApp app(&net, suite, topo.hosts[0], senders, cfg);
    app.Start();
    net.scheduler().RunUntil(Seconds(2));
    events += net.scheduler().executed();
    recorded += net.flight().recorded();
    benchmark::DoNotOptimize(net.flight().size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(events));
  state.counters["flight_events"] =
      static_cast<double>(recorded) / static_cast<double>(state.iterations());
  state.SetLabel("same incast with a 64K-event flight ring armed");
}
BENCHMARK(BM_IncastTestbedTraceOn)->Unit(benchmark::kMillisecond);

// Fault-layer twin of BM_IncastTestbedEventsPerSec: the same workload with
// a FaultInjector attached to every port but configured to inject nothing,
// so every wire packet pays the full OnWire hook (state lookup, profile
// checks) and drops out the other side untouched. The items_per_second gap
// against the plain bench is the all-in cost of having the fault layer
// armed; bench.sh asserts it stays within noise. (BM_IncastTestbedEventsPerSec
// itself measures the unattached path — one null check per packet — and is
// guarded against the pre-fault-layer BENCH_core.json numbers.)
void BM_IncastTestbedFaultIdle(benchmark::State& state) {
  uint64_t events = 0;
  uint64_t inspected = 0;
  for (auto _ : state) {
    ProtocolSuite suite;
    suite.protocol = Protocol::kTfc;
    Network net(3);
    LinkOptions opts;
    opts.ecn_threshold_bytes = suite.EcnThresholdBytes(kGbps);
    TestbedTopology topo = BuildTestbed(net, opts);
    suite.InstallSwitchLogic(net);
    FaultInjector inject(&net, 17);
    FaultProfile idle;  // all probabilities zero: pure hook overhead
    for (const auto& node : net.nodes()) {
      for (const auto& port : node->ports()) {
        inject.Attach(port.get(), idle);
      }
    }
    std::vector<Host*> senders(topo.hosts.begin() + 1, topo.hosts.end());
    IncastConfig cfg;
    cfg.block_bytes = 64 * 1024;
    cfg.rounds = 20;
    IncastApp app(&net, suite, topo.hosts[0], senders, cfg);
    app.Start();
    net.scheduler().RunUntil(Seconds(2));
    events += net.scheduler().executed();
    inspected += inject.inspected();
    benchmark::DoNotOptimize(inject.drops());
  }
  state.SetItemsProcessed(static_cast<int64_t>(events));
  state.counters["wire_packets"] =
      static_cast<double>(inspected) / static_cast<double>(state.iterations());
  state.SetLabel("same incast with an idle fault injector on every port");
}
BENCHMARK(BM_IncastTestbedFaultIdle)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tfc

BENCHMARK_MAIN();
