// Fig. 10 — Convergence rate when a third flow joins.
//
// Same staggered-flows scenario zoomed at the third flow's start: how long
// until the newcomer holds its fair share of goodput?
//
// Paper result: TFC converges in about one round (sub-millisecond); DCTCP
// needs ~20 ms of window evolution; TCP doesn't converge within the window.

#include <memory>
#include <vector>

#include "bench/common.h"
#include "src/topo/topologies.h"
#include "src/workload/persistent_flow.h"

namespace {

// Returns the time (us) after the third flow starts until its goodput stays
// within 25% of the fair share for 3 consecutive 1 ms windows (-1 = never).
double RunOnce(tfc::Protocol protocol, bool quick) {
  using namespace tfc;
  ProtocolSuite suite = bench::MakeSuite(protocol);
  Network net(101);
  LinkOptions opts;
  opts.ecn_threshold_bytes = suite.EcnThresholdBytes(kGbps);
  TestbedTopology topo = BuildTestbed(net, opts);
  suite.InstallSwitchLogic(net);

  // Two incumbents, warmed up.
  std::vector<std::unique_ptr<PersistentFlow>> flows;
  Host* sources[] = {topo.hosts[0], topo.hosts[1], topo.hosts[0]};
  for (int i = 0; i < 2; ++i) {
    flows.push_back(std::make_unique<PersistentFlow>(
        suite.MakeSender(&net, sources[i], topo.hosts[2])));
    flows.back()->Start();
  }
  const TimeNs warmup = quick ? Milliseconds(50) : Seconds(1.0);
  net.scheduler().RunUntil(warmup);

  // The newcomer.
  flows.push_back(std::make_unique<PersistentFlow>(
      suite.MakeSender(&net, sources[2], topo.hosts[2])));
  flows.back()->Start();
  const TimeNs t0 = net.scheduler().now();

  const double fair_share = 1e9 * 1460.0 / 1538.0 / 3.0;  // payload bps / 3
  const TimeNs window = Milliseconds(1);
  uint64_t last = flows[2]->delivered_bytes();
  int in_band = 0;
  for (int w = 0; w < 200; ++w) {
    net.scheduler().RunUntil(net.scheduler().now() + window);
    const uint64_t d = flows[2]->delivered_bytes();
    const double bps = static_cast<double>(d - last) * 8.0 / ToSeconds(window);
    last = d;
    if (bps > 0.75 * fair_share && bps < 1.33 * fair_share) {
      if (++in_band == 3) {
        return ToMicroseconds(net.scheduler().now() - t0 - 2 * window);
      }
    } else {
      in_band = 0;
    }
  }
  return -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tfc;
  const bool quick = bench::QuickMode(argc, argv);
  bench::Header("Fig. 10 - convergence time of a newly arriving flow",
                "TFC: one round (~sub-ms); DCTCP: ~20 ms; TCP: does not settle");
  std::printf("%-8s %s\n", "proto", "time to fair share (1 ms windows)");
  for (Protocol p : bench::AllProtocols()) {
    const double us = RunOnce(p, quick);
    if (us < 0) {
      std::printf("%-8s did not converge within 200 ms\n", ProtocolName(p));
    } else {
      std::printf("%-8s %.1f ms\n", ProtocolName(p), us / 1000.0);
    }
  }
  std::printf("\n(convergence = goodput within 25%% of fair share for 3 consecutive\n"
              " 1 ms windows, measured from the flow's Start().)\n");
  return 0;
}
