// Ablations of TFC's design choices (not a paper figure; backs the design
// discussion in DESIGN.md §2). Each section removes one mechanism and
// shows what breaks:
//
//   1. token adjustment (Sec. 4.5)   -> multi-bottleneck work conservation
//   2. delay function (Sec. 4.6)     -> loss under high flow concurrency
//   3. resume probe (extension)      -> barrier incast at 400 senders
//   4. EWMA history weight (Eq. 8)   -> stability of the token value
//   5. weighted allocation extension -> bandwidth ratio follows the weight

#include <memory>
#include <vector>

#include "bench/common.h"
#include "src/tfc/endpoints.h"
#include "src/tfc/switch_port.h"
#include "src/topo/topologies.h"
#include "src/workload/incast.h"
#include "src/workload/persistent_flow.h"

namespace {

using namespace tfc;

void AblateTokenAdjustment(bool quick) {
  std::printf("\n[1] token adjustment (host-jitter compensation, Sec. 4.5)\n");
  std::printf("    (4 flows, 1 Gbps, ~100 us of random host processing per RTT)\n");
  std::printf("%-14s %16s\n", "variant", "goodput (Mbps)");
  for (bool adjust : {true, false}) {
    Network net(201);
    StarTopology topo = BuildStar(net, 5, LinkOptions(), kGbps, Microseconds(100));
    for (Host* h : topo.hosts) {
      h->set_processing_delay(Microseconds(20), Microseconds(60));
    }
    TfcSwitchConfig sw;
    sw.enable_token_adjustment = adjust;
    InstallTfcSwitches(net, sw);
    std::vector<std::unique_ptr<PersistentFlow>> flows;
    for (int i = 1; i <= 4; ++i) {
      flows.push_back(std::make_unique<PersistentFlow>(std::make_unique<TfcSender>(
          &net, topo.hosts[static_cast<size_t>(i)], topo.hosts[0], TfcHostConfig())));
      flows.back()->Start();
    }
    const TimeNs measure = quick ? Milliseconds(200) : Milliseconds(800);
    net.scheduler().RunUntil(Milliseconds(200));
    uint64_t before = 0;
    for (auto& f : flows) {
      before += f->delivered_bytes();
    }
    net.scheduler().RunUntil(Milliseconds(200) + measure);
    uint64_t after = 0;
    for (auto& f : flows) {
      after += f->delivered_bytes();
    }
    std::printf("%-14s %16.1f\n", adjust ? "with (Eq. 7)" : "without",
                static_cast<double>(after - before) * 8.0 / ToSeconds(measure) / 1e6);
  }
  std::printf("(rtt_b is a minimum and so excludes the random host delay; the\n"
              " rho0/rho boost buys that capacity back. The mark-based effective-\n"
              " flow count already makes multi-bottleneck cases work-conserving.)\n");
}

void AblateDelayFunction(bool quick) {
  std::printf("\n[2] delay function (80 concurrent flows, sub-MSS windows, 64 KB buffer)\n");
  std::printf("%-14s %10s %12s %14s\n", "variant", "drops", "timeouts", "goodput(Mbps)");
  for (bool delay_fn : {true, false}) {
    Network net(202);
    LinkOptions opts;
    opts.switch_buffer_bytes = 64 * 1024;
    TfcSwitchConfig sw;
    sw.enable_delay_function = delay_fn;
    StarTopology topo = BuildStar(net, 81, opts, kGbps, Microseconds(5));
    InstallTfcSwitches(net, sw);
    std::vector<std::unique_ptr<PersistentFlow>> flows;
    for (int i = 1; i <= 80; ++i) {
      flows.push_back(std::make_unique<PersistentFlow>(std::make_unique<TfcSender>(
          &net, topo.hosts[static_cast<size_t>(i)], topo.hosts[0], TfcHostConfig())));
      flows.back()->Start();
    }
    const TimeNs total = quick ? Milliseconds(150) : Milliseconds(600);
    net.scheduler().RunUntil(total);
    uint64_t timeouts = 0;
    uint64_t delivered = 0;
    for (auto& f : flows) {
      timeouts += f->sender().stats().timeouts;
      delivered += f->delivered_bytes();
    }
    std::printf("%-14s %10llu %12llu %14.1f\n", delay_fn ? "with (4.6)" : "without",
                static_cast<unsigned long long>(
                    Network::FindPort(topo.sw, topo.hosts[0])->drops()),
                static_cast<unsigned long long>(timeouts),
                static_cast<double>(delivered) * 8.0 / ToSeconds(total) / 1e6);
  }
}

void AblateResumeProbe(bool quick) {
  std::printf("\n[3] resume probe (barrier incast, 10 Gbps, 400 senders, 512 KB buffer)\n");
  std::printf("%-14s %10s %12s %18s\n", "variant", "drops", "timeouts",
              "goodput(Gbps)");
  const int senders = quick ? 150 : 400;
  for (bool resume : {true, false}) {
    Network net(203);
    LinkOptions opts;
    opts.switch_buffer_bytes = 512 * 1024;
    StarTopology topo = BuildStar(net, senders + 1, opts, 10 * kGbps, Microseconds(5));
    ProtocolSuite suite = bench::MakeSuite(Protocol::kTfc);
    suite.tfc.resume_probe = resume;
    suite.InstallSwitchLogic(net);
    std::vector<Host*> responders(topo.hosts.begin() + 1, topo.hosts.end());
    IncastConfig cfg;
    cfg.block_bytes = 256 * 1024;
    cfg.rounds = 1 << 20;
    IncastApp app(&net, suite, topo.hosts[0], responders, cfg);
    app.Start();
    net.scheduler().RunUntil(quick ? Milliseconds(300) : Seconds(1.5));
    std::printf("%-14s %10llu %12llu %18.2f\n", resume ? "with" : "without (paper)",
                static_cast<unsigned long long>(
                    Network::FindPort(topo.sw, topo.hosts[0])->drops()),
                static_cast<unsigned long long>(app.total_timeouts()),
                app.goodput_bps() / 1e9);
  }
}

void AblateEwma(bool quick) {
  std::printf("\n[4] EWMA history weight alpha (Eq. 8), 4 flows, token stability\n");
  std::printf("%-8s %16s %16s\n", "alpha", "token stddev(B)", "goodput(Mbps)");
  for (double alpha : {0.0, 0.5, 7.0 / 8.0, 15.0 / 16.0}) {
    Network net(204);
    StarTopology topo = BuildStar(net, 5, LinkOptions(), kGbps, Microseconds(20));
    TfcSwitchConfig sw;
    sw.history_weight = alpha;
    InstallTfcSwitches(net, sw);
    std::vector<std::unique_ptr<PersistentFlow>> flows;
    for (int i = 1; i <= 4; ++i) {
      flows.push_back(std::make_unique<PersistentFlow>(std::make_unique<TfcSender>(
          &net, topo.hosts[static_cast<size_t>(i)], topo.hosts[0], TfcHostConfig())));
      flows.back()->Start();
    }
    TfcPortAgent* agent =
        TfcPortAgent::FromPort(Network::FindPort(topo.sw, topo.hosts[0]));
    RunningStats token;
    net.scheduler().RunUntil(Milliseconds(100));
    agent->on_slot = [&](const TfcPortAgent::SlotInfo& info) {
      token.Add(info.token.value());
    };
    uint64_t before = 0;
    for (auto& f : flows) {
      before += f->delivered_bytes();
    }
    const TimeNs measure = quick ? Milliseconds(100) : Milliseconds(400);
    net.scheduler().RunUntil(Milliseconds(100) + measure);
    uint64_t after = 0;
    for (auto& f : flows) {
      after += f->delivered_bytes();
    }
    std::printf("%-8.4f %16.1f %16.1f\n", alpha, token.stddev(),
                static_cast<double>(after - before) * 8.0 / ToSeconds(measure) / 1e6);
  }
}

void AblateWeights(bool quick) {
  std::printf("\n[5] weighted allocation (2 flows, weight 1 vs w)\n");
  std::printf("%-8s %16s %16s\n", "weight", "rate ratio", "total(Mbps)");
  for (uint8_t w : {uint8_t{1}, uint8_t{2}, uint8_t{4}, uint8_t{8}}) {
    Network net(205);
    StarTopology topo = BuildStar(net, 3, LinkOptions(), kGbps, Microseconds(20));
    InstallTfcSwitches(net);
    TfcHostConfig plain;
    TfcHostConfig weighted;
    weighted.weight = w;
    PersistentFlow f1(
        std::make_unique<TfcSender>(&net, topo.hosts[1], topo.hosts[0], plain));
    PersistentFlow f2(
        std::make_unique<TfcSender>(&net, topo.hosts[2], topo.hosts[0], weighted));
    f1.Start();
    f2.Start();
    net.scheduler().RunUntil(Milliseconds(150));
    const uint64_t b1 = f1.delivered_bytes();
    const uint64_t b2 = f2.delivered_bytes();
    const TimeNs measure = quick ? Milliseconds(100) : Milliseconds(400);
    net.scheduler().RunUntil(Milliseconds(150) + measure);
    const double r1 = static_cast<double>(f1.delivered_bytes() - b1);
    const double r2 = static_cast<double>(f2.delivered_bytes() - b2);
    std::printf("%-8d %16.2f %16.1f\n", w, r2 / r1,
                (r1 + r2) * 8.0 / ToSeconds(measure) / 1e6);
  }
  std::printf("(ratios are weight-proportional while the per-unit window stays\n"
              " above one MSS; at high weights the unweighted flow's one-frame\n"
              " floor compresses the split toward equal.)\n");
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = bench::QuickMode(argc, argv);
  bench::Header("Ablations - what each TFC mechanism buys",
                "remove one mechanism at a time; see DESIGN.md section 2");
  AblateTokenAdjustment(quick);
  AblateDelayFunction(quick);
  AblateResumeProbe(quick);
  AblateEwma(quick);
  AblateWeights(quick);
  return 0;
}
