// Fig. 15 — Large-scale incast at 10 Gbps (the paper's ns-2 experiment).
//
// Setup (paper Sec. 6.2.1): 10 Gbps links, 512 KB switch buffers,
// synchronized blocks of 64/128/256 KB, up to 400 senders, 2 s runs.
//
// Paper result: TFC holds ~90% link utilization for any sender count and
// suffers ~zero timeouts; TCP collapses beyond ~50 senders and reaches
// ~0.8 timeouts per block at 300+ senders.

#include <vector>

#include "bench/common.h"
#include "src/topo/topologies.h"
#include "src/workload/incast.h"

namespace {

struct Row {
  double throughput_gbps;
  double max_to_per_block;
  uint64_t drops;
  int rounds;
};

Row RunOnce(tfc::Protocol protocol, int senders, uint64_t block_kb,
            tfc::TimeNs duration) {
  using namespace tfc;
  ProtocolSuite suite = bench::MakeSuite(protocol);
  Network net(151);
  LinkOptions opts;
  opts.switch_buffer_bytes = 512 * 1024;
  opts.ecn_threshold_bytes = suite.EcnThresholdBytes(10 * kGbps);
  StarTopology topo = BuildStar(net, senders + 1, opts, 10 * kGbps, Microseconds(5));
  suite.InstallSwitchLogic(net);

  std::vector<Host*> responders(topo.hosts.begin() + 1, topo.hosts.end());
  IncastConfig cfg;
  cfg.block_bytes = block_kb * 1024;
  cfg.rounds = 1 << 20;  // effectively unbounded; the duration decides
  IncastApp app(&net, suite, topo.hosts[0], responders, cfg);
  app.Start();
  net.scheduler().RunUntil(duration);

  Port* bottleneck = Network::FindPort(topo.sw, topo.hosts[0]);
  return Row{app.goodput_bps() / 1e9, app.max_timeouts_per_block(),
             bottleneck->drops(), app.rounds_completed()};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tfc;
  const bool quick = bench::QuickMode(argc, argv);
  bench::Header("Fig. 15 - large-scale incast at 10 Gbps (block sizes 64/128/256 KB)",
                "TFC ~90% utilization flat to 400 senders with ~0 timeouts; TCP "
                "collapses >50, ~0.8 TO/block at 300+");

  const TimeNs duration = quick ? Milliseconds(300) : Seconds(2.0);
  std::vector<int> counts =
      quick ? std::vector<int>{50, 400} : std::vector<int>{50, 100, 200, 300, 400};
  std::vector<uint64_t> blocks =
      quick ? std::vector<uint64_t>{256} : std::vector<uint64_t>{64, 128, 256};

  std::printf("%-10s %8s %9s %18s %14s %10s %8s\n", "series", "senders", "block",
              "throughput(Gbps)", "maxTO/block", "drops", "rounds");
  for (Protocol p : {Protocol::kTfc, Protocol::kTcp}) {
    for (uint64_t block : blocks) {
      for (int n : counts) {
        Row r = RunOnce(p, n, block, duration);
        std::printf("%-4s-%-3lluKB %8d %8lluK %18.2f %14.2f %10llu %8d\n",
                    ProtocolName(p), static_cast<unsigned long long>(block), n,
                    static_cast<unsigned long long>(block), r.throughput_gbps,
                    r.max_to_per_block, static_cast<unsigned long long>(r.drops),
                    r.rounds);
      }
    }
  }
  std::printf("\n(throughput is application goodput over the run; maxTO/block is the\n"
              " worst per-flow average timeouts per block — the paper's Fig. 15b.)\n");
  return 0;
}
