// Fig. 14 — Impact of the target-utilization parameter ρ0.
//
// Setup (paper Sec. 6.1.2): H1..H5 each run one long flow to H6; ρ0 sweeps
// from 0.90 to 1.00.
//
// Paper result: receiver goodput tracks ρ0 (880 -> 940 Mbps); the queue
// stays under ~1 KB for ρ0 < 0.98 and grows to ~6 KB at ρ0 = 1.0 because
// RTT fluctuations then have no headroom.

#include <memory>
#include <vector>

#include "bench/common.h"
#include "src/tfc/switch_port.h"
#include "src/topo/topologies.h"
#include "src/workload/persistent_flow.h"
#include "src/workload/samplers.h"

namespace {

struct Row {
  double goodput_mbps;
  double avg_queue_b;
  double max_queue_kb;
};

Row RunOnce(double rho0, bool quick) {
  using namespace tfc;
  Network net(141);
  // 100 us links: the simulated testbed's bare RTT is otherwise so small
  // that fair windows for 5 flows fall to (or below) one MSS and the
  // one-packet quantization, not rho0, sets the rate — visible as a sharp
  // goodput notch at whichever rho0 lands W right on the MSS boundary.
  // Fig. 14 explores the W >> MSS regime, which needs BDP of many frames.
  TestbedTopology topo = BuildTestbed(net, LinkOptions(), kGbps, Microseconds(100));
  TfcSwitchConfig sw;
  sw.rho0 = rho0;
  InstallTfcSwitches(net, sw);

  std::vector<std::unique_ptr<PersistentFlow>> flows;
  for (int i = 0; i < 5; ++i) {
    flows.push_back(std::make_unique<PersistentFlow>(std::make_unique<TfcSender>(
        &net, topo.hosts[static_cast<size_t>(i)], topo.hosts[5], TfcHostConfig())));
    flows.back()->Start();
  }

  Port* bottleneck = Network::FindPort(topo.switches[2], topo.hosts[5]);
  const TimeNs warmup = quick ? Milliseconds(50) : Milliseconds(500);
  const TimeNs measure = quick ? Milliseconds(200) : Seconds(2.0);
  net.scheduler().RunUntil(warmup);
  bottleneck->ResetMaxQueue();
  QueueSampler sampler(&net.scheduler(), bottleneck, Microseconds(100));
  uint64_t before = 0;
  for (auto& f : flows) {
    before += f->delivered_bytes();
  }
  net.scheduler().RunUntil(warmup + measure);
  uint64_t after = 0;
  for (auto& f : flows) {
    after += f->delivered_bytes();
  }
  return Row{static_cast<double>(after - before) * 8.0 / ToSeconds(measure) / 1e6,
             sampler.stats.mean(),
             static_cast<double>(bottleneck->max_queue_bytes()) / 1024.0};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tfc;
  const bool quick = bench::QuickMode(argc, argv);
  bench::Header("Fig. 14 - impact of rho0 (5 flows -> H6)",
                "goodput 880->940 Mbps as rho0 0.90->1.00; queue <1 KB below 0.98, "
                "~6 KB at 1.00");
  std::printf("%6s %14s %14s %14s\n", "rho0", "goodput(Mbps)", "avg_queue(B)",
              "max_queue(KB)");
  for (double rho0 : {0.90, 0.92, 0.94, 0.96, 0.98, 1.00}) {
    Row r = RunOnce(rho0, quick);
    std::printf("%6.2f %14.1f %14.1f %14.2f\n", rho0, r.goodput_mbps, r.avg_queue_b,
                r.max_queue_kb);
  }
  std::printf("\n(goodput tracks rho0; the standing queue appears only when the\n"
              " utilization target leaves no headroom for RTT variation.)\n");
  return 0;
}
