// Fig. 8 — Queue length at the bottleneck under TFC / DCTCP / TCP.
//
// Setup (paper Sec. 6.1.2): H1 and H2 each start two long-lived flows to H3,
// one flow every 3 seconds. The egress queue toward H3 is sampled — since
// PR 3 through the telemetry recorder (src/sim/telemetry.h): the bench
// watches the bottleneck port's registered "port.<node>.p<n>.queue_bytes"
// gauge on the same cadence the bespoke QueueSampler used, so the numbers
// in EXPERIMENTS.md reproduce from the recorder's series.
//
// Paper result: TFC keeps near-zero queue (spikes <= ~9 KB); DCTCP holds
// ~30 KB around its marking threshold; TCP fills the whole 256 KB buffer.

#include <memory>
#include <vector>

#include "bench/common.h"
#include "src/sim/telemetry.h"
#include "src/topo/topologies.h"
#include "src/workload/persistent_flow.h"

namespace {

struct Result {
  tfc::RunningStats queue;
  tfc::Bytes max_queue = 0;
  uint64_t drops = 0;
  size_t samples = 0;
};

Result RunOnce(tfc::Protocol protocol, bool quick) {
  using namespace tfc;
  ProtocolSuite suite = bench::MakeSuite(protocol);
  Network net(81);
  LinkOptions opts;
  opts.switch_buffer_bytes = 256 * 1024;
  opts.ecn_threshold_bytes = suite.EcnThresholdBytes(kGbps);
  TestbedTopology topo = BuildTestbed(net, opts);
  suite.InstallSwitchLogic(net);

  const TimeNs stagger = quick ? Milliseconds(100) : Seconds(3.0);
  std::vector<std::unique_ptr<PersistentFlow>> flows;
  Host* sources[] = {topo.hosts[0], topo.hosts[1], topo.hosts[0], topo.hosts[1]};
  for (int i = 0; i < 4; ++i) {
    flows.push_back(std::make_unique<PersistentFlow>(
        suite.MakeSender(&net, sources[i], topo.hosts[2])));
    PersistentFlow* flow = flows.back().get();
    net.scheduler().ScheduleAt(stagger * i + 1, [flow] { flow->Start(); });
  }

  Port* bottleneck = Network::FindPort(topo.switches[1], topo.hosts[2]);
  const std::string series_name = bottleneck->metric_prefix() + ".queue_bytes";
  TimeSeriesRecorder recorder(&net.scheduler(), &net.metrics());
  recorder.Watch(series_name);
  recorder.Start(quick ? Microseconds(200) : Milliseconds(2), /*first_delay=*/0);
  net.scheduler().RunUntil(stagger * 4);
  recorder.Stop();

  Result r;
  for (const TimeSeriesRecorder::Sample& s : recorder.Series(series_name)) {
    r.queue.Add(s.v);
  }
  r.samples = static_cast<size_t>(r.queue.count());
  r.max_queue = bottleneck->max_queue_bytes();
  r.drops = bottleneck->drops();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tfc;
  const bool quick = bench::QuickMode(argc, argv);
  bench::Header("Fig. 8 - bottleneck queue length, 4 staggered long flows",
                "TFC ~0 (max ~9KB), DCTCP ~30KB, TCP fills the 256KB buffer");

  std::printf("%-8s %14s %14s %14s %10s\n", "proto", "mean_queue(KB)",
              "p-max_queue(KB)", "sampled_max", "drops");
  for (Protocol p : bench::AllProtocols()) {
    Result r = RunOnce(p, quick);
    std::printf("%-8s %14.1f %14.1f %14.1f %10llu\n", ProtocolName(p),
                r.queue.mean() / 1024.0, static_cast<double>(r.max_queue) / 1024.0,
                r.queue.max() / 1024.0, static_cast<unsigned long long>(r.drops));
  }
  std::printf("\n(mean and max over the whole run, including flow arrivals;\n"
              " TFC stays within a few packets, TCP saturates the buffer.)\n");
  return 0;
}
