# Empty dependencies file for tfc_dctcp.
# This may be replaced when dependencies are built.
