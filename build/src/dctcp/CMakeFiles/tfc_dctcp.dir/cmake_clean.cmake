file(REMOVE_RECURSE
  "CMakeFiles/tfc_dctcp.dir/dctcp.cc.o"
  "CMakeFiles/tfc_dctcp.dir/dctcp.cc.o.d"
  "libtfc_dctcp.a"
  "libtfc_dctcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfc_dctcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
