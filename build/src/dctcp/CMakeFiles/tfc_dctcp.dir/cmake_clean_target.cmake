file(REMOVE_RECURSE
  "libtfc_dctcp.a"
)
