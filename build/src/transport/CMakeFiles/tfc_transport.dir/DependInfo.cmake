
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transport/reliable_receiver.cc" "src/transport/CMakeFiles/tfc_transport.dir/reliable_receiver.cc.o" "gcc" "src/transport/CMakeFiles/tfc_transport.dir/reliable_receiver.cc.o.d"
  "/root/repo/src/transport/reliable_sender.cc" "src/transport/CMakeFiles/tfc_transport.dir/reliable_sender.cc.o" "gcc" "src/transport/CMakeFiles/tfc_transport.dir/reliable_sender.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/tfc_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
