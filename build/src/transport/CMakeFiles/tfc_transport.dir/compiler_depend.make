# Empty compiler generated dependencies file for tfc_transport.
# This may be replaced when dependencies are built.
