file(REMOVE_RECURSE
  "CMakeFiles/tfc_transport.dir/reliable_receiver.cc.o"
  "CMakeFiles/tfc_transport.dir/reliable_receiver.cc.o.d"
  "CMakeFiles/tfc_transport.dir/reliable_sender.cc.o"
  "CMakeFiles/tfc_transport.dir/reliable_sender.cc.o.d"
  "libtfc_transport.a"
  "libtfc_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfc_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
