file(REMOVE_RECURSE
  "libtfc_transport.a"
)
