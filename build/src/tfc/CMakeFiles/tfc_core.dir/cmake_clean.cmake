file(REMOVE_RECURSE
  "CMakeFiles/tfc_core.dir/endpoints.cc.o"
  "CMakeFiles/tfc_core.dir/endpoints.cc.o.d"
  "CMakeFiles/tfc_core.dir/switch_port.cc.o"
  "CMakeFiles/tfc_core.dir/switch_port.cc.o.d"
  "libtfc_core.a"
  "libtfc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
