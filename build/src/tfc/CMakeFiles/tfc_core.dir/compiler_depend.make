# Empty compiler generated dependencies file for tfc_core.
# This may be replaced when dependencies are built.
