file(REMOVE_RECURSE
  "libtfc_core.a"
)
