file(REMOVE_RECURSE
  "libtfc_workload.a"
)
