# Empty dependencies file for tfc_workload.
# This may be replaced when dependencies are built.
