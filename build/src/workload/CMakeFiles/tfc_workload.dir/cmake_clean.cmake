file(REMOVE_RECURSE
  "CMakeFiles/tfc_workload.dir/benchmark_traffic.cc.o"
  "CMakeFiles/tfc_workload.dir/benchmark_traffic.cc.o.d"
  "CMakeFiles/tfc_workload.dir/incast.cc.o"
  "CMakeFiles/tfc_workload.dir/incast.cc.o.d"
  "CMakeFiles/tfc_workload.dir/shuffle.cc.o"
  "CMakeFiles/tfc_workload.dir/shuffle.cc.o.d"
  "libtfc_workload.a"
  "libtfc_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfc_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
