file(REMOVE_RECURSE
  "CMakeFiles/tfc_topo.dir/topologies.cc.o"
  "CMakeFiles/tfc_topo.dir/topologies.cc.o.d"
  "libtfc_topo.a"
  "libtfc_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfc_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
