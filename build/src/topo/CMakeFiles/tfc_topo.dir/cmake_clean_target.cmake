file(REMOVE_RECURSE
  "libtfc_topo.a"
)
