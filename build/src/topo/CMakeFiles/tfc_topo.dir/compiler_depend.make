# Empty compiler generated dependencies file for tfc_topo.
# This may be replaced when dependencies are built.
