# Empty compiler generated dependencies file for tfc_xcp.
# This may be replaced when dependencies are built.
