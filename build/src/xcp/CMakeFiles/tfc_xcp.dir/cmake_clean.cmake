file(REMOVE_RECURSE
  "CMakeFiles/tfc_xcp.dir/xcp.cc.o"
  "CMakeFiles/tfc_xcp.dir/xcp.cc.o.d"
  "libtfc_xcp.a"
  "libtfc_xcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfc_xcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
