file(REMOVE_RECURSE
  "libtfc_xcp.a"
)
