
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xcp/xcp.cc" "src/xcp/CMakeFiles/tfc_xcp.dir/xcp.cc.o" "gcc" "src/xcp/CMakeFiles/tfc_xcp.dir/xcp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/transport/CMakeFiles/tfc_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tfc_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
