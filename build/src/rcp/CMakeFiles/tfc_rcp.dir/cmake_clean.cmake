file(REMOVE_RECURSE
  "CMakeFiles/tfc_rcp.dir/rcp.cc.o"
  "CMakeFiles/tfc_rcp.dir/rcp.cc.o.d"
  "libtfc_rcp.a"
  "libtfc_rcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfc_rcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
