# Empty compiler generated dependencies file for tfc_rcp.
# This may be replaced when dependencies are built.
