file(REMOVE_RECURSE
  "libtfc_rcp.a"
)
