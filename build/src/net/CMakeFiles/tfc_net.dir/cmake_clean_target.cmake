file(REMOVE_RECURSE
  "libtfc_net.a"
)
