file(REMOVE_RECURSE
  "CMakeFiles/tfc_net.dir/host.cc.o"
  "CMakeFiles/tfc_net.dir/host.cc.o.d"
  "CMakeFiles/tfc_net.dir/network.cc.o"
  "CMakeFiles/tfc_net.dir/network.cc.o.d"
  "CMakeFiles/tfc_net.dir/node.cc.o"
  "CMakeFiles/tfc_net.dir/node.cc.o.d"
  "CMakeFiles/tfc_net.dir/port.cc.o"
  "CMakeFiles/tfc_net.dir/port.cc.o.d"
  "CMakeFiles/tfc_net.dir/switch.cc.o"
  "CMakeFiles/tfc_net.dir/switch.cc.o.d"
  "CMakeFiles/tfc_net.dir/trace.cc.o"
  "CMakeFiles/tfc_net.dir/trace.cc.o.d"
  "libtfc_net.a"
  "libtfc_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfc_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
