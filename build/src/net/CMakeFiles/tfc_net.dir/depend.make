# Empty dependencies file for tfc_net.
# This may be replaced when dependencies are built.
