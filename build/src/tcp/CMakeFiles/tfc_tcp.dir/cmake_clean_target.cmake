file(REMOVE_RECURSE
  "libtfc_tcp.a"
)
