# Empty compiler generated dependencies file for tfc_tcp.
# This may be replaced when dependencies are built.
