file(REMOVE_RECURSE
  "CMakeFiles/tfc_tcp.dir/tcp.cc.o"
  "CMakeFiles/tfc_tcp.dir/tcp.cc.o.d"
  "libtfc_tcp.a"
  "libtfc_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfc_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
