file(REMOVE_RECURSE
  "CMakeFiles/storm_onoff.dir/storm_onoff.cpp.o"
  "CMakeFiles/storm_onoff.dir/storm_onoff.cpp.o.d"
  "storm_onoff"
  "storm_onoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storm_onoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
