# Empty dependencies file for storm_onoff.
# This may be replaced when dependencies are built.
