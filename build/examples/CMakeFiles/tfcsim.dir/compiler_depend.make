# Empty compiler generated dependencies file for tfcsim.
# This may be replaced when dependencies are built.
