file(REMOVE_RECURSE
  "CMakeFiles/tfcsim.dir/tfcsim.cpp.o"
  "CMakeFiles/tfcsim.dir/tfcsim.cpp.o.d"
  "tfcsim"
  "tfcsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfcsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
