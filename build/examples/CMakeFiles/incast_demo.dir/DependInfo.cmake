
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/incast_demo.cpp" "examples/CMakeFiles/incast_demo.dir/incast_demo.cpp.o" "gcc" "examples/CMakeFiles/incast_demo.dir/incast_demo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/tfc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/dctcp/CMakeFiles/tfc_dctcp.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/tfc_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/tfc/CMakeFiles/tfc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rcp/CMakeFiles/tfc_rcp.dir/DependInfo.cmake"
  "/root/repo/build/src/xcp/CMakeFiles/tfc_xcp.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/tfc_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/tfc_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tfc_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
