# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_smoke_ablation_tfc "/root/repo/build/bench/ablation_tfc" "--quick")
set_tests_properties(bench_smoke_ablation_tfc PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;10;add_test;/root/repo/bench/CMakeLists.txt;14;tfc_add_bench;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_baseline_rcp "/root/repo/build/bench/baseline_rcp" "--quick")
set_tests_properties(bench_smoke_baseline_rcp PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;10;add_test;/root/repo/bench/CMakeLists.txt;15;tfc_add_bench;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_beyond_multipath "/root/repo/build/bench/beyond_multipath" "--quick")
set_tests_properties(bench_smoke_beyond_multipath PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;10;add_test;/root/repo/bench/CMakeLists.txt;16;tfc_add_bench;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig06_rttb "/root/repo/build/bench/fig06_rttb" "--quick")
set_tests_properties(bench_smoke_fig06_rttb PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;10;add_test;/root/repo/bench/CMakeLists.txt;17;tfc_add_bench;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig07_ne "/root/repo/build/bench/fig07_ne" "--quick")
set_tests_properties(bench_smoke_fig07_ne PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;10;add_test;/root/repo/bench/CMakeLists.txt;18;tfc_add_bench;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig08_queue "/root/repo/build/bench/fig08_queue" "--quick")
set_tests_properties(bench_smoke_fig08_queue PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;10;add_test;/root/repo/bench/CMakeLists.txt;19;tfc_add_bench;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig09_goodput "/root/repo/build/bench/fig09_goodput" "--quick")
set_tests_properties(bench_smoke_fig09_goodput PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;10;add_test;/root/repo/bench/CMakeLists.txt;20;tfc_add_bench;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig10_convergence "/root/repo/build/bench/fig10_convergence" "--quick")
set_tests_properties(bench_smoke_fig10_convergence PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;10;add_test;/root/repo/bench/CMakeLists.txt;21;tfc_add_bench;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig11_workconserving "/root/repo/build/bench/fig11_workconserving" "--quick")
set_tests_properties(bench_smoke_fig11_workconserving PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;10;add_test;/root/repo/bench/CMakeLists.txt;22;tfc_add_bench;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig12_incast_testbed "/root/repo/build/bench/fig12_incast_testbed" "--quick")
set_tests_properties(bench_smoke_fig12_incast_testbed PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;10;add_test;/root/repo/bench/CMakeLists.txt;23;tfc_add_bench;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig13_benchmark_testbed "/root/repo/build/bench/fig13_benchmark_testbed" "--quick")
set_tests_properties(bench_smoke_fig13_benchmark_testbed PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;10;add_test;/root/repo/bench/CMakeLists.txt;24;tfc_add_bench;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig14_rho0 "/root/repo/build/bench/fig14_rho0" "--quick")
set_tests_properties(bench_smoke_fig14_rho0 PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;10;add_test;/root/repo/bench/CMakeLists.txt;25;tfc_add_bench;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig15_incast_large "/root/repo/build/bench/fig15_incast_large" "--quick")
set_tests_properties(bench_smoke_fig15_incast_large PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;10;add_test;/root/repo/bench/CMakeLists.txt;26;tfc_add_bench;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig16_benchmark_large "/root/repo/build/bench/fig16_benchmark_large" "--quick")
set_tests_properties(bench_smoke_fig16_benchmark_large PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;10;add_test;/root/repo/bench/CMakeLists.txt;27;tfc_add_bench;/root/repo/bench/CMakeLists.txt;0;")
