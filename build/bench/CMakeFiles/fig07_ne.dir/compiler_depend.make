# Empty compiler generated dependencies file for fig07_ne.
# This may be replaced when dependencies are built.
