file(REMOVE_RECURSE
  "CMakeFiles/fig07_ne.dir/fig07_ne.cc.o"
  "CMakeFiles/fig07_ne.dir/fig07_ne.cc.o.d"
  "fig07_ne"
  "fig07_ne.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_ne.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
