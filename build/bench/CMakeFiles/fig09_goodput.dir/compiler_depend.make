# Empty compiler generated dependencies file for fig09_goodput.
# This may be replaced when dependencies are built.
