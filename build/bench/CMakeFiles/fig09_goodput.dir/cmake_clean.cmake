file(REMOVE_RECURSE
  "CMakeFiles/fig09_goodput.dir/fig09_goodput.cc.o"
  "CMakeFiles/fig09_goodput.dir/fig09_goodput.cc.o.d"
  "fig09_goodput"
  "fig09_goodput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_goodput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
