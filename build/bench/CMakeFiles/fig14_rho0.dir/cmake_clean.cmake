file(REMOVE_RECURSE
  "CMakeFiles/fig14_rho0.dir/fig14_rho0.cc.o"
  "CMakeFiles/fig14_rho0.dir/fig14_rho0.cc.o.d"
  "fig14_rho0"
  "fig14_rho0.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_rho0.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
