# Empty compiler generated dependencies file for fig14_rho0.
# This may be replaced when dependencies are built.
