# Empty dependencies file for fig15_incast_large.
# This may be replaced when dependencies are built.
