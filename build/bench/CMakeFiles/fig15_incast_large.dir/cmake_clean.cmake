file(REMOVE_RECURSE
  "CMakeFiles/fig15_incast_large.dir/fig15_incast_large.cc.o"
  "CMakeFiles/fig15_incast_large.dir/fig15_incast_large.cc.o.d"
  "fig15_incast_large"
  "fig15_incast_large.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_incast_large.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
