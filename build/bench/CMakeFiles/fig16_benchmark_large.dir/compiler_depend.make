# Empty compiler generated dependencies file for fig16_benchmark_large.
# This may be replaced when dependencies are built.
