file(REMOVE_RECURSE
  "CMakeFiles/fig16_benchmark_large.dir/fig16_benchmark_large.cc.o"
  "CMakeFiles/fig16_benchmark_large.dir/fig16_benchmark_large.cc.o.d"
  "fig16_benchmark_large"
  "fig16_benchmark_large.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_benchmark_large.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
