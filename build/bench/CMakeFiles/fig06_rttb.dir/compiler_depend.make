# Empty compiler generated dependencies file for fig06_rttb.
# This may be replaced when dependencies are built.
