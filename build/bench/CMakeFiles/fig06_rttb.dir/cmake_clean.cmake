file(REMOVE_RECURSE
  "CMakeFiles/fig06_rttb.dir/fig06_rttb.cc.o"
  "CMakeFiles/fig06_rttb.dir/fig06_rttb.cc.o.d"
  "fig06_rttb"
  "fig06_rttb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_rttb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
