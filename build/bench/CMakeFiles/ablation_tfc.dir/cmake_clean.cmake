file(REMOVE_RECURSE
  "CMakeFiles/ablation_tfc.dir/ablation_tfc.cc.o"
  "CMakeFiles/ablation_tfc.dir/ablation_tfc.cc.o.d"
  "ablation_tfc"
  "ablation_tfc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tfc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
