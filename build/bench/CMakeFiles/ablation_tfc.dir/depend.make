# Empty dependencies file for ablation_tfc.
# This may be replaced when dependencies are built.
