file(REMOVE_RECURSE
  "CMakeFiles/beyond_multipath.dir/beyond_multipath.cc.o"
  "CMakeFiles/beyond_multipath.dir/beyond_multipath.cc.o.d"
  "beyond_multipath"
  "beyond_multipath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/beyond_multipath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
