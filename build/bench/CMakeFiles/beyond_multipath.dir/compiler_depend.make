# Empty compiler generated dependencies file for beyond_multipath.
# This may be replaced when dependencies are built.
