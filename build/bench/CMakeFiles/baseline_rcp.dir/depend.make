# Empty dependencies file for baseline_rcp.
# This may be replaced when dependencies are built.
