file(REMOVE_RECURSE
  "CMakeFiles/baseline_rcp.dir/baseline_rcp.cc.o"
  "CMakeFiles/baseline_rcp.dir/baseline_rcp.cc.o.d"
  "baseline_rcp"
  "baseline_rcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_rcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
