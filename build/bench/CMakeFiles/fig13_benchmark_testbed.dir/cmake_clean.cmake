file(REMOVE_RECURSE
  "CMakeFiles/fig13_benchmark_testbed.dir/fig13_benchmark_testbed.cc.o"
  "CMakeFiles/fig13_benchmark_testbed.dir/fig13_benchmark_testbed.cc.o.d"
  "fig13_benchmark_testbed"
  "fig13_benchmark_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_benchmark_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
