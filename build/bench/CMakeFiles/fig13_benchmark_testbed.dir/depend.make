# Empty dependencies file for fig13_benchmark_testbed.
# This may be replaced when dependencies are built.
