# Empty dependencies file for fig12_incast_testbed.
# This may be replaced when dependencies are built.
