file(REMOVE_RECURSE
  "CMakeFiles/fig12_incast_testbed.dir/fig12_incast_testbed.cc.o"
  "CMakeFiles/fig12_incast_testbed.dir/fig12_incast_testbed.cc.o.d"
  "fig12_incast_testbed"
  "fig12_incast_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_incast_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
