# Empty dependencies file for fig11_workconserving.
# This may be replaced when dependencies are built.
