file(REMOVE_RECURSE
  "CMakeFiles/fig11_workconserving.dir/fig11_workconserving.cc.o"
  "CMakeFiles/fig11_workconserving.dir/fig11_workconserving.cc.o.d"
  "fig11_workconserving"
  "fig11_workconserving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_workconserving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
