file(REMOVE_RECURSE
  "CMakeFiles/fig08_queue.dir/fig08_queue.cc.o"
  "CMakeFiles/fig08_queue.dir/fig08_queue.cc.o.d"
  "fig08_queue"
  "fig08_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
