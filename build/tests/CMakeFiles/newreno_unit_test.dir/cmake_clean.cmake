file(REMOVE_RECURSE
  "CMakeFiles/newreno_unit_test.dir/newreno_unit_test.cc.o"
  "CMakeFiles/newreno_unit_test.dir/newreno_unit_test.cc.o.d"
  "newreno_unit_test"
  "newreno_unit_test.pdb"
  "newreno_unit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/newreno_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
