# Empty compiler generated dependencies file for newreno_unit_test.
# This may be replaced when dependencies are built.
