# Empty compiler generated dependencies file for tfc_endpoint_test.
# This may be replaced when dependencies are built.
