file(REMOVE_RECURSE
  "CMakeFiles/tfc_endpoint_test.dir/tfc_endpoint_test.cc.o"
  "CMakeFiles/tfc_endpoint_test.dir/tfc_endpoint_test.cc.o.d"
  "tfc_endpoint_test"
  "tfc_endpoint_test.pdb"
  "tfc_endpoint_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfc_endpoint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
