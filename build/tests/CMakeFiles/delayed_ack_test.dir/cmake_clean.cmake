file(REMOVE_RECURSE
  "CMakeFiles/delayed_ack_test.dir/delayed_ack_test.cc.o"
  "CMakeFiles/delayed_ack_test.dir/delayed_ack_test.cc.o.d"
  "delayed_ack_test"
  "delayed_ack_test.pdb"
  "delayed_ack_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delayed_ack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
