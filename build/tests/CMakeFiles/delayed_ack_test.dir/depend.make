# Empty dependencies file for delayed_ack_test.
# This may be replaced when dependencies are built.
