# Empty dependencies file for rcp_test.
# This may be replaced when dependencies are built.
