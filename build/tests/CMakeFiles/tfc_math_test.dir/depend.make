# Empty dependencies file for tfc_math_test.
# This may be replaced when dependencies are built.
