file(REMOVE_RECURSE
  "CMakeFiles/tfc_math_test.dir/tfc_math_test.cc.o"
  "CMakeFiles/tfc_math_test.dir/tfc_math_test.cc.o.d"
  "tfc_math_test"
  "tfc_math_test.pdb"
  "tfc_math_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfc_math_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
