file(REMOVE_RECURSE
  "CMakeFiles/tfc_extensions_test.dir/tfc_extensions_test.cc.o"
  "CMakeFiles/tfc_extensions_test.dir/tfc_extensions_test.cc.o.d"
  "tfc_extensions_test"
  "tfc_extensions_test.pdb"
  "tfc_extensions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfc_extensions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
