# Empty compiler generated dependencies file for tfc_extensions_test.
# This may be replaced when dependencies are built.
