# Empty dependencies file for mss_sweep_test.
# This may be replaced when dependencies are built.
