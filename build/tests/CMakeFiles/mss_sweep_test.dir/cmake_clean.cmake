file(REMOVE_RECURSE
  "CMakeFiles/mss_sweep_test.dir/mss_sweep_test.cc.o"
  "CMakeFiles/mss_sweep_test.dir/mss_sweep_test.cc.o.d"
  "mss_sweep_test"
  "mss_sweep_test.pdb"
  "mss_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mss_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
