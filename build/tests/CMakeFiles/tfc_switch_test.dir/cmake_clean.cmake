file(REMOVE_RECURSE
  "CMakeFiles/tfc_switch_test.dir/tfc_switch_test.cc.o"
  "CMakeFiles/tfc_switch_test.dir/tfc_switch_test.cc.o.d"
  "tfc_switch_test"
  "tfc_switch_test.pdb"
  "tfc_switch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfc_switch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
