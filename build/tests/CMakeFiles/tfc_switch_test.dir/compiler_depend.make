# Empty compiler generated dependencies file for tfc_switch_test.
# This may be replaced when dependencies are built.
