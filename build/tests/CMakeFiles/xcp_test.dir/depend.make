# Empty dependencies file for xcp_test.
# This may be replaced when dependencies are built.
