file(REMOVE_RECURSE
  "CMakeFiles/tfc_e2e_test.dir/tfc_e2e_test.cc.o"
  "CMakeFiles/tfc_e2e_test.dir/tfc_e2e_test.cc.o.d"
  "tfc_e2e_test"
  "tfc_e2e_test.pdb"
  "tfc_e2e_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfc_e2e_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
