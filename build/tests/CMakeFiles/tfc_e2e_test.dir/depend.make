# Empty dependencies file for tfc_e2e_test.
# This may be replaced when dependencies are built.
