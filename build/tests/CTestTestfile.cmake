# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/transport_test[1]_include.cmake")
include("/root/repo/build/tests/tcp_test[1]_include.cmake")
include("/root/repo/build/tests/dctcp_test[1]_include.cmake")
include("/root/repo/build/tests/tfc_switch_test[1]_include.cmake")
include("/root/repo/build/tests/tfc_e2e_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/tfc_extensions_test[1]_include.cmake")
include("/root/repo/build/tests/tfc_endpoint_test[1]_include.cmake")
include("/root/repo/build/tests/determinism_test[1]_include.cmake")
include("/root/repo/build/tests/reassembly_test[1]_include.cmake")
include("/root/repo/build/tests/rcp_test[1]_include.cmake")
include("/root/repo/build/tests/ecmp_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/delayed_ack_test[1]_include.cmake")
include("/root/repo/build/tests/xcp_test[1]_include.cmake")
include("/root/repo/build/tests/shuffle_test[1]_include.cmake")
include("/root/repo/build/tests/tfc_math_test[1]_include.cmake")
include("/root/repo/build/tests/scheduler_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/protocol_matrix_test[1]_include.cmake")
include("/root/repo/build/tests/mss_sweep_test[1]_include.cmake")
include("/root/repo/build/tests/edge_cases_test[1]_include.cmake")
include("/root/repo/build/tests/newreno_unit_test[1]_include.cmake")
