#!/usr/bin/env bash
# Full reproduction driver: configure, build, test, regenerate every paper
# figure, and leave the transcripts next to this script.
#
#   ./repro.sh            # full run (tests + all figures, ~5 minutes)
#   ./repro.sh --quick    # smoke: same coverage, shrunk durations
set -euo pipefail
cd "$(dirname "$0")"

QUICK="${1:-}"

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build --output-on-failure 2>&1 | tee test_output.txt

: > bench_output.txt
for b in build/bench/*; do
  if [ -f "$b" ] && [ -x "$b" ]; then
    echo "### $(basename "$b")" | tee -a bench_output.txt
    "$b" ${QUICK:+--quick} 2>&1 | tee -a bench_output.txt
    echo | tee -a bench_output.txt
  fi
done

echo "done: see test_output.txt and bench_output.txt"
